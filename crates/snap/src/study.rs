//! Encoding and decoding a whole [`Study`] through the container.
//!
//! The corpus section stores every certificate's exact DER once; every
//! other section references certificates by corpus index, so the
//! `Arc`-sharing structure of the live objects (chains, store anchors,
//! universe roots) is rebuilt on load by parsing each blob exactly once.
//! The corpus order is the first-encounter order of one canonical walk
//! (Notary chains, intermediates, universe roots, then store anchors),
//! which is a pure function of the study — no pointer values, clocks or
//! RNG — so the emitted file is byte-identical run to run and at any
//! encoding pool width: sections encode in parallel on the ambient
//! [`ExecPool`] but each section's bytes depend only on the study, and
//! [`crate::container::assemble`] lays them out in fixed id order.
//!
//! What the snapshot deliberately does *not* carry: the [`NotaryDb`]
//! (rebuilt from the decoded ecosystem — it is a cheap derived view) and
//! the raw fault-injection ledger (`Study::injected`; the aggregated
//! `RunHealth` section preserves everything the export schema reads).

use crate::container::{assemble, SectionId, Snapshot};
use crate::wire::{put_bytes, put_str, put_varint, put_varint_i64, Cursor};
use crate::SnapError;
use std::collections::HashMap;
use std::sync::Arc;
use tangled_asn1::Time;
use tangled_core::health::RunHealth;
use tangled_core::Study;
use tangled_exec::ExecPool;
use tangled_netalyzr::device::{Device, DeviceId};
use tangled_netalyzr::session::{NetworkKind, Session};
use tangled_netalyzr::Population;
use tangled_notary::ecosystem::{Ecosystem, NotaryCert, Service};
use tangled_notary::{NotaryDb, ValidationIndex};
use tangled_pki::store::RootStore;
use tangled_pki::stores::{EcosystemStore, ReferenceStore};
use tangled_pki::trust::{AnchorSource, TrustAnchor, TrustBits};
use tangled_pki::vocab::{AndroidVersion, Manufacturer, Operator};
use tangled_x509::{CertIdentity, Certificate};
use tangled_crypto::Uint;

/// What a write produced — the CLI's report.
pub struct SnapSummary {
    /// Total file size.
    pub bytes: usize,
    /// Per-section `(name, body length, checksum)` rows in file order.
    pub sections: Vec<(&'static str, u64, u64)>,
}

// ---------------------------------------------------------------------------
// Enum tags. Explicit, exhaustive, and frozen: these are file format.
// ---------------------------------------------------------------------------

fn service_tag(s: Service) -> u8 {
    match s {
        Service::Https => 0,
        Service::Smtp => 1,
        Service::Imap => 2,
        Service::Xmpp => 3,
        Service::Other => 4,
    }
}

fn service_from(tag: u8) -> Option<Service> {
    Service::ALL.into_iter().find(|&s| service_tag(s) == tag)
}

fn source_tag(s: AnchorSource) -> u8 {
    match s {
        AnchorSource::Aosp => 0,
        AnchorSource::Manufacturer => 1,
        AnchorSource::Operator => 2,
        AnchorSource::User => 3,
        AnchorSource::RootApp => 4,
        AnchorSource::Unknown => 5,
    }
}

const ALL_SOURCES: [AnchorSource; 6] = [
    AnchorSource::Aosp,
    AnchorSource::Manufacturer,
    AnchorSource::Operator,
    AnchorSource::User,
    AnchorSource::RootApp,
    AnchorSource::Unknown,
];

fn source_from(tag: u8) -> Option<AnchorSource> {
    ALL_SOURCES.into_iter().find(|&s| source_tag(s) == tag)
}

fn trust_tag(t: TrustBits) -> u8 {
    u8::from(t.tls_server) | (u8::from(t.email) << 1) | (u8::from(t.code_signing) << 2)
}

fn trust_from(tag: u8) -> Option<TrustBits> {
    if tag > 7 {
        return None;
    }
    Some(TrustBits {
        tls_server: tag & 1 != 0,
        email: tag & 2 != 0,
        code_signing: tag & 4 != 0,
    })
}

const ALL_MANUFACTURERS: [Manufacturer; 11] = [
    Manufacturer::Samsung,
    Manufacturer::Lg,
    Manufacturer::Asus,
    Manufacturer::Htc,
    Manufacturer::Motorola,
    Manufacturer::Sony,
    Manufacturer::Huawei,
    Manufacturer::Lenovo,
    Manufacturer::Compal,
    Manufacturer::Pantech,
    Manufacturer::Other,
];

fn manufacturer_tag(m: Manufacturer) -> u8 {
    ALL_MANUFACTURERS
        .iter()
        .position(|&x| x == m)
        .expect("manufacturer enumerated") as u8
}

fn manufacturer_from(tag: u8) -> Option<Manufacturer> {
    ALL_MANUFACTURERS.get(tag as usize).copied()
}

fn version_tag(v: AndroidVersion) -> u8 {
    AndroidVersion::ALL
        .iter()
        .position(|&x| x == v)
        .expect("version enumerated") as u8
}

fn version_from(tag: u8) -> Option<AndroidVersion> {
    AndroidVersion::ALL.get(tag as usize).copied()
}

const ALL_OPERATORS: [Operator; 13] = [
    Operator::ThreeUk,
    Operator::AttUs,
    Operator::BouyguesFr,
    Operator::EeUk,
    Operator::FreeFr,
    Operator::OrangeFr,
    Operator::SfrFr,
    Operator::SprintUs,
    Operator::TmobileUs,
    Operator::TelstraAu,
    Operator::VerizonUs,
    Operator::VodafoneDe,
    Operator::Other,
];

fn operator_tag(o: Operator) -> u8 {
    ALL_OPERATORS
        .iter()
        .position(|&x| x == o)
        .expect("operator enumerated") as u8
}

fn operator_from(tag: u8) -> Option<Operator> {
    ALL_OPERATORS.get(tag as usize).copied()
}

fn network_tag(n: NetworkKind) -> u8 {
    match n {
        NetworkKind::Wifi => 0,
        NetworkKind::Cellular => 1,
    }
}

fn network_from(tag: u8) -> Option<NetworkKind> {
    match tag {
        0 => Some(NetworkKind::Wifi),
        1 => Some(NetworkKind::Cellular),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Corpus: first-encounter walk over every certificate the study holds.
// ---------------------------------------------------------------------------

/// Deduplicated DER corpus plus the bytes→index map sections encode with.
struct Corpus<'a> {
    ders: Vec<&'a [u8]>,
    index: HashMap<&'a [u8], u32>,
}

impl<'a> Corpus<'a> {
    fn intern(&mut self, cert: &'a Certificate) -> u32 {
        let der = cert.to_der();
        if let Some(&i) = self.index.get(der) {
            return i;
        }
        let i = self.ders.len() as u32;
        self.ders.push(der);
        self.index.insert(der, i);
        i
    }

    fn of(&self, cert: &Certificate) -> u32 {
        *self
            .index
            .get(cert.to_der())
            .expect("every certificate was interned by the walk")
    }
}

/// The canonical certificate walk. Any cert reachable from the study
/// must be interned here, in an order that is a pure function of the
/// study's contents.
fn build_corpus<'a>(
    study: &'a Study,
    stores: &'a [Arc<RootStore>],
    eco_stores: &'a [Arc<RootStore>],
) -> Corpus<'a> {
    let mut corpus = Corpus {
        ders: Vec::new(),
        index: HashMap::new(),
    };
    for nc in &study.ecosystem.certs {
        for cert in &nc.chain {
            corpus.intern(cert);
        }
    }
    for cert in &study.ecosystem.intermediates {
        corpus.intern(cert);
    }
    for cert in &study.ecosystem.universe_roots {
        corpus.intern(cert);
    }
    for store in stores.iter().chain(eco_stores) {
        for anchor in store.iter() {
            corpus.intern(&anchor.cert);
        }
    }
    corpus
}

/// The store list a snapshot carries: the six reference profiles first
/// (in [`ReferenceStore::ALL`] order — trustd's warm start depends on
/// this), then every distinct device store, in first-device order.
///
/// Stores are deduplicated by `Arc` identity, **not** by name: the §5.2
/// sprinkle clones a firmware store per device under the shared name
/// "<firmware> (+unusual)", so same-named stores can hold different
/// anchors. Pointer identity is safe for determinism because the dedup
/// outcome depends only on the population's (deterministic) Arc-sharing
/// structure, never on the pointer values themselves. Returns the list
/// plus a pointer-keyed index used to wire devices to table slots.
fn store_list(population: &Population) -> (Vec<Arc<RootStore>>, HashMap<usize, u32>) {
    let mut list: Vec<Arc<RootStore>> =
        ReferenceStore::ALL.into_iter().map(|rs| rs.cached()).collect();
    let mut index: HashMap<usize, u32> = list
        .iter()
        .enumerate()
        .map(|(i, s)| (Arc::as_ptr(s) as usize, i as u32))
        .collect();
    for d in &population.devices {
        let key = Arc::as_ptr(&d.store) as usize;
        if let std::collections::hash_map::Entry::Vacant(slot) = index.entry(key) {
            slot.insert(list.len() as u32);
            list.push(Arc::clone(&d.store));
        }
    }
    (list, index)
}

/// The ecosystem store families a snapshot carries in its `eco-stores`
/// section, in [`EcosystemStore::ALL`] order. These are process-cached
/// synthetic stores (a pure function of the calibrated catalogue), so
/// the section bytes are identical run to run; they live apart from the
/// `stores` section so snapshots written before the disparity engine
/// existed still decode their reference profiles cleanly.
fn eco_store_list() -> Vec<Arc<RootStore>> {
    EcosystemStore::ALL.into_iter().map(|es| es.cached()).collect()
}

// ---------------------------------------------------------------------------
// Section encoders. Each returns one body; all are pure functions of the
// study (plus the corpus map), so they parallelise freely.
// ---------------------------------------------------------------------------

fn encode_meta(study: &Study, corpus: &Corpus<'_>, stores: &[Arc<RootStore>]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, corpus.ders.len() as u64);
    put_varint(&mut out, study.ecosystem.certs.len() as u64);
    put_varint(&mut out, study.ecosystem.intermediates.len() as u64);
    put_varint(&mut out, study.ecosystem.universe_roots.len() as u64);
    put_varint(&mut out, stores.len() as u64);
    put_varint(&mut out, study.population.devices.len() as u64);
    put_varint(&mut out, study.population.sessions.len() as u64);
    put_varint(&mut out, u64::from(study.validation.validated_total()));
    out
}

fn encode_corpus(corpus: &Corpus<'_>) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, corpus.ders.len() as u64);
    for der in &corpus.ders {
        put_bytes(&mut out, der);
    }
    out
}

fn encode_ecosystem(eco: &Ecosystem, corpus: &Corpus<'_>) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, eco.certs.len() as u64);
    for nc in &eco.certs {
        put_varint(&mut out, nc.chain.len() as u64);
        for cert in &nc.chain {
            put_varint(&mut out, u64::from(corpus.of(cert)));
        }
        put_varint(&mut out, nc.sessions);
        out.push(service_tag(nc.service));
    }
    put_varint(&mut out, eco.intermediates.len() as u64);
    for cert in &eco.intermediates {
        put_varint(&mut out, u64::from(corpus.of(cert)));
    }
    put_varint(&mut out, eco.universe_roots.len() as u64);
    for cert in &eco.universe_roots {
        put_varint(&mut out, u64::from(corpus.of(cert)));
    }
    out
}

fn encode_stores(stores: &[Arc<RootStore>], corpus: &Corpus<'_>) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, stores.len() as u64);
    for store in stores {
        put_str(&mut out, store.name());
        put_varint(&mut out, store.len() as u64);
        for anchor in store.iter() {
            put_varint(&mut out, u64::from(corpus.of(&anchor.cert)));
            out.push(source_tag(anchor.source));
            out.push(u8::from(anchor.enabled));
            out.push(trust_tag(anchor.trust));
        }
    }
    out
}

fn put_identity(out: &mut Vec<u8>, id: &CertIdentity) {
    put_str(out, &id.subject);
    put_bytes(out, &id.modulus.to_be_bytes());
}

fn encode_population(pop: &Population, store_index: &HashMap<usize, u32>) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, pop.devices.len() as u64);
    for d in &pop.devices {
        put_varint(&mut out, u64::from(d.id.0));
        put_str(&mut out, &d.model);
        out.push(manufacturer_tag(d.manufacturer));
        out.push(version_tag(d.os_version));
        out.push(operator_tag(d.operator));
        out.push(u8::from(d.rooted));
        let store = store_index
            .get(&(Arc::as_ptr(&d.store) as usize))
            .expect("device store is in the store list");
        put_varint(&mut out, u64::from(*store));
        put_varint(&mut out, d.removed_aosp.len() as u64);
        for id in &d.removed_aosp {
            put_identity(&mut out, id);
        }
    }
    put_varint(&mut out, pop.sessions.len() as u64);
    for s in &pop.sessions {
        put_varint(&mut out, u64::from(s.index));
        put_varint(&mut out, u64::from(s.device.0));
        put_varint_i64(&mut out, s.at.to_unix());
        out.push(network_tag(s.network));
    }
    out
}

fn encode_validation(validation: &ValidationIndex) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, u64::from(validation.validated_total()));
    put_varint(&mut out, u64::from(validation.total_non_expired()));
    put_varint(&mut out, u64::from(validation.total()));
    put_varint(&mut out, validation.total_sessions());

    // Union of both tally keyrings, sorted canonically so the section
    // bytes never depend on HashMap iteration order.
    let mut ids: Vec<&CertIdentity> = validation
        .per_root()
        .keys()
        .chain(validation.per_root_sessions().keys())
        .collect();
    ids.sort_by(|a, b| {
        (&a.subject, a.modulus.to_be_bytes()).cmp(&(&b.subject, b.modulus.to_be_bytes()))
    });
    ids.dedup_by(|a, b| a == b);
    put_varint(&mut out, ids.len() as u64);
    for id in ids {
        put_identity(&mut out, id);
        put_varint(&mut out, u64::from(validation.root_count(id)));
        put_varint(&mut out, validation.root_sessions(id));
    }
    out
}

fn encode_health(health: &RunHealth) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, health.injected.len() as u64);
    for (kind, n) in &health.injected {
        put_str(&mut out, kind);
        put_varint(&mut out, u64::from(*n));
    }
    put_varint(&mut out, health.quarantined.len() as u64);
    for (stage, errors) in &health.quarantined {
        put_str(&mut out, stage);
        put_varint(&mut out, errors.len() as u64);
        for (label, n) in errors {
            put_str(&mut out, label);
            put_varint(&mut out, u64::from(*n));
        }
    }
    out
}

/// Encode a study's section bodies, sharding section encoding over
/// `pool`. The returned list is the complete study section set in
/// canonical tag order, byte-identical at every pool width — the input
/// both [`encode_study`] assembles and the delta writer
/// ([`crate::delta::encode_delta`]) dedups against a base.
pub fn encode_study_sections(study: &Study, pool: &ExecPool) -> Vec<(SectionId, Vec<u8>)> {
    let (stores, store_index) = store_list(&study.population);
    let eco_stores = eco_store_list();
    let corpus = build_corpus(study, &stores, &eco_stores);

    let ids = SectionId::STUDY;
    let bodies = pool.par_map_indexed(&ids, |_, id| match id {
        SectionId::Meta => encode_meta(study, &corpus, &stores),
        SectionId::Corpus => encode_corpus(&corpus),
        SectionId::Ecosystem => encode_ecosystem(&study.ecosystem, &corpus),
        SectionId::Stores => encode_stores(&stores, &corpus),
        SectionId::Population => encode_population(&study.population, &store_index),
        SectionId::Validation => encode_validation(&study.validation),
        SectionId::Health => encode_health(&study.health),
        SectionId::EcoStores => encode_stores(&eco_stores, &corpus),
        SectionId::DeltaMeta | SectionId::TrustState => {
            unreachable!("not study sections")
        }
    });
    ids.into_iter().zip(bodies).collect()
}

/// Encode a study into container bytes, sharding section encoding over
/// `pool`. The output is byte-identical at every pool width.
pub fn encode_study(study: &Study, pool: &ExecPool) -> Vec<u8> {
    assemble(&encode_study_sections(study, pool))
}

/// Write a study snapshot to `path` on the ambient pool, returning the
/// per-section summary.
pub fn write_study(study: &Study, path: &str) -> Result<SnapSummary, SnapError> {
    let started = std::time::Instant::now();
    let bytes = encode_study(study, &ExecPool::current());
    std::fs::write(path, &bytes)?;
    let snap = Snapshot::parse(bytes).expect("own output parses");
    tangled_obs::registry::add("snap.writes", 1);
    tangled_obs::registry::observe("snap.write.us", started.elapsed().as_micros() as u64);
    Ok(SnapSummary {
        bytes: snap.size(),
        sections: snap
            .entries()
            .iter()
            .map(|e| {
                let name = SectionId::ALL
                    .into_iter()
                    .find(|s| s.tag() == e.tag)
                    .map(SectionId::name)
                    .unwrap_or("unknown");
                (name, e.len, e.checksum)
            })
            .collect(),
    })
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

/// Parse every corpus blob once, in parallel, yielding shared `Arc`s in
/// corpus-index order.
fn decode_corpus(snap: &Snapshot) -> Result<Vec<Arc<Certificate>>, SnapError> {
    let body = snap.section(SectionId::Corpus)?;
    let mut c = Cursor::new(body, "corpus");
    let count = c.count()?;
    let mut ders = Vec::with_capacity(count);
    for _ in 0..count {
        ders.push(c.bytes()?);
    }
    c.finish()?;
    let parsed = ExecPool::current().par_map_indexed(&ders, |_, der| {
        Certificate::parse(der).map(Arc::new)
    });
    parsed
        .into_iter()
        .map(|r| {
            r.map_err(|_| SnapError::Malformed {
                section: "corpus",
                detail: "certificate fails to parse",
            })
        })
        .collect()
}

fn cert_at<'a>(
    corpus: &'a [Arc<Certificate>],
    index: u64,
    c: &Cursor<'_>,
) -> Result<&'a Arc<Certificate>, SnapError> {
    corpus
        .get(index as usize)
        .ok_or_else(|| c.malformed("corpus index out of range"))
}

fn decode_ecosystem(
    snap: &Snapshot,
    corpus: &[Arc<Certificate>],
) -> Result<Ecosystem, SnapError> {
    let body = snap.section(SectionId::Ecosystem)?;
    let mut c = Cursor::new(body, "ecosystem");
    let n_certs = c.count()?;
    let mut certs = Vec::with_capacity(n_certs);
    for _ in 0..n_certs {
        let chain_len = c.count()?;
        if chain_len == 0 {
            return Err(c.malformed("empty chain"));
        }
        let mut chain = Vec::with_capacity(chain_len);
        for _ in 0..chain_len {
            let idx = c.varint()?;
            chain.push(Arc::clone(cert_at(corpus, idx, &c)?));
        }
        let sessions = c.varint()?;
        let service = service_from(c.u8()?).ok_or_else(|| c.malformed("bad service tag"))?;
        certs.push(NotaryCert {
            chain,
            sessions,
            service,
        });
    }
    let n_inter = c.count()?;
    let mut intermediates = Vec::with_capacity(n_inter);
    for _ in 0..n_inter {
        let idx = c.varint()?;
        intermediates.push(Arc::clone(cert_at(corpus, idx, &c)?));
    }
    let n_universe = c.count()?;
    let mut universe_roots = Vec::with_capacity(n_universe);
    for _ in 0..n_universe {
        let idx = c.varint()?;
        universe_roots.push(Arc::clone(cert_at(corpus, idx, &c)?));
    }
    c.finish()?;
    Ok(Ecosystem {
        certs,
        intermediates,
        universe_roots,
    })
}

fn decode_store_section(
    snap: &Snapshot,
    corpus: &[Arc<Certificate>],
    id: SectionId,
) -> Result<Vec<Arc<RootStore>>, SnapError> {
    let body = snap.section(id)?;
    let mut c = Cursor::new(body, id.name());
    let n_stores = c.count()?;
    let mut stores = Vec::with_capacity(n_stores);
    for _ in 0..n_stores {
        let name = c.str()?;
        let n_anchors = c.count()?;
        let mut store = RootStore::new(&name);
        for _ in 0..n_anchors {
            let idx = c.varint()?;
            let cert = Arc::clone(cert_at(corpus, idx, &c)?);
            let source = source_from(c.u8()?).ok_or_else(|| c.malformed("bad source tag"))?;
            let enabled = c.u8()? != 0;
            let trust = trust_from(c.u8()?).ok_or_else(|| c.malformed("bad trust tag"))?;
            let mut anchor = TrustAnchor::new(cert, source);
            anchor.enabled = enabled;
            anchor.trust = trust;
            if !store.add(anchor) {
                return Err(c.malformed("duplicate anchor identity in store"));
            }
        }
        stores.push(Arc::new(store));
    }
    c.finish()?;
    Ok(stores)
}

/// Decode just the root stores of a snapshot (the trustd warm-start
/// path: no population or ecosystem materialisation). The first six
/// entries are the reference profiles in [`ReferenceStore::ALL`] order.
pub fn decode_stores(snap: &Snapshot) -> Result<Vec<Arc<RootStore>>, SnapError> {
    let corpus = decode_corpus(snap)?;
    decode_store_section(snap, &corpus, SectionId::Stores)
}

/// Decode the ecosystem store families from the `eco-stores` section, in
/// [`EcosystemStore::ALL`] order (Apple, Microsoft, Mozilla NSS, Java).
/// Snapshots written before the disparity engine existed have no such
/// section; callers get [`SnapError::MissingSection`] and fall back to
/// regenerating the stores cold.
pub fn decode_eco_stores(snap: &Snapshot) -> Result<Vec<Arc<RootStore>>, SnapError> {
    let corpus = decode_corpus(snap)?;
    let stores = decode_store_section(snap, &corpus, SectionId::EcoStores)?;
    if stores.len() != EcosystemStore::ALL.len() {
        return Err(SnapError::Malformed {
            section: "eco-stores",
            detail: "wrong ecosystem store count",
        });
    }
    for (store, expected) in stores.iter().zip(EcosystemStore::ALL) {
        if store.name() != expected.name() {
            return Err(SnapError::Malformed {
                section: "eco-stores",
                detail: "ecosystem store out of order",
            });
        }
    }
    Ok(stores)
}

fn read_identity(c: &mut Cursor<'_>) -> Result<CertIdentity, SnapError> {
    let subject = c.str()?;
    let modulus = Uint::from_be_bytes(c.bytes()?);
    Ok(CertIdentity { subject, modulus })
}

fn decode_population(
    snap: &Snapshot,
    stores: &[Arc<RootStore>],
) -> Result<Population, SnapError> {
    let body = snap.section(SectionId::Population)?;
    let mut c = Cursor::new(body, "population");
    let n_devices = c.count()?;
    let mut devices = Vec::with_capacity(n_devices);
    for _ in 0..n_devices {
        let id = DeviceId(u32::try_from(c.varint()?).map_err(|_| c.malformed("device id"))?);
        let model = c.str()?;
        let manufacturer =
            manufacturer_from(c.u8()?).ok_or_else(|| c.malformed("bad manufacturer tag"))?;
        let os_version = version_from(c.u8()?).ok_or_else(|| c.malformed("bad version tag"))?;
        let operator = operator_from(c.u8()?).ok_or_else(|| c.malformed("bad operator tag"))?;
        let rooted = c.u8()? != 0;
        let store_idx = c.varint()? as usize;
        let store = stores
            .get(store_idx)
            .ok_or_else(|| c.malformed("store index out of range"))?;
        let n_removed = c.count()?;
        let mut removed_aosp = Vec::with_capacity(n_removed);
        for _ in 0..n_removed {
            removed_aosp.push(read_identity(&mut c)?);
        }
        devices.push(Device {
            id,
            model,
            manufacturer,
            os_version,
            operator,
            rooted,
            store: Arc::clone(store),
            removed_aosp,
        });
    }
    let n_sessions = c.count()?;
    let mut sessions = Vec::with_capacity(n_sessions);
    for _ in 0..n_sessions {
        let index = u32::try_from(c.varint()?).map_err(|_| c.malformed("session index"))?;
        let device =
            DeviceId(u32::try_from(c.varint()?).map_err(|_| c.malformed("session device"))?);
        if device.0 as usize >= devices.len() {
            return Err(c.malformed("session device out of range"));
        }
        let at = Time::from_unix(c.varint_i64()?);
        let network = network_from(c.u8()?).ok_or_else(|| c.malformed("bad network tag"))?;
        sessions.push(Session {
            index,
            device,
            at,
            network,
        });
    }
    c.finish()?;
    Ok(Population { devices, sessions })
}

fn decode_validation(snap: &Snapshot) -> Result<ValidationIndex, SnapError> {
    let body = snap.section(SectionId::Validation)?;
    let mut c = Cursor::new(body, "validation");
    let validated_total =
        u32::try_from(c.varint()?).map_err(|_| c.malformed("validated_total"))?;
    let total_non_expired =
        u32::try_from(c.varint()?).map_err(|_| c.malformed("total_non_expired"))?;
    let total = u32::try_from(c.varint()?).map_err(|_| c.malformed("total"))?;
    let total_sessions = c.varint()?;
    let n = c.count()?;
    let mut per_root = HashMap::with_capacity(n);
    let mut per_root_sessions = HashMap::with_capacity(n);
    for _ in 0..n {
        let id = read_identity(&mut c)?;
        let count = u32::try_from(c.varint()?).map_err(|_| c.malformed("root count"))?;
        let sessions = c.varint()?;
        if count > 0 {
            per_root.insert(id.clone(), count);
        }
        if sessions > 0 {
            per_root_sessions.insert(id, sessions);
        }
    }
    c.finish()?;
    Ok(ValidationIndex::from_parts(
        per_root,
        per_root_sessions,
        validated_total,
        total_non_expired,
        total,
        total_sessions,
    ))
}

fn decode_health(snap: &Snapshot) -> Result<RunHealth, SnapError> {
    let body = snap.section(SectionId::Health)?;
    let mut c = Cursor::new(body, "health");
    let mut health = RunHealth::new();
    let n_injected = c.count()?;
    for _ in 0..n_injected {
        let kind = c.str()?;
        let count = u32::try_from(c.varint()?).map_err(|_| c.malformed("injected count"))?;
        *health.injected.entry(kind).or_default() += count;
    }
    let n_stages = c.count()?;
    for _ in 0..n_stages {
        let stage = c.str()?;
        let n_labels = c.count()?;
        let entry = health.quarantined.entry(stage).or_default();
        for _ in 0..n_labels {
            let label = c.str()?;
            let count =
                u32::try_from(c.varint()?).map_err(|_| c.malformed("quarantined count"))?;
            *entry.entry(label).or_default() += count;
        }
    }
    c.finish()?;
    Ok(health)
}

/// Decode a full study from a parsed container.
///
/// The corpus is parsed once (in parallel); chains, store anchors and
/// universe roots all share those `Arc`s, and devices share their
/// store's `Arc` by store index — the live object graph's sharing
/// structure survives the round trip. The [`NotaryDb`] is rebuilt from
/// the decoded ecosystem; the raw injection ledger is not persisted, so
/// `injected` is empty on a loaded study (its aggregate, the health
/// section, is).
pub fn decode_study(snap: &Snapshot) -> Result<Study, SnapError> {
    let started = std::time::Instant::now();
    let corpus = decode_corpus(snap)?;
    let ecosystem = decode_ecosystem(snap, &corpus)?;
    let stores = decode_store_section(snap, &corpus, SectionId::Stores)?;
    let population = decode_population(snap, &stores)?;
    let validation = decode_validation(snap)?;
    let health = decode_health(snap)?;
    let db = NotaryDb::build(&ecosystem);
    tangled_obs::registry::add("snap.loads", 1);
    tangled_obs::registry::observe("snap.load.us", started.elapsed().as_micros() as u64);
    Ok(Study {
        population,
        ecosystem,
        validation,
        db,
        health,
        injected: Vec::new(),
    })
}

/// Open a snapshot file and decode the study it holds.
pub fn load_study(path: &str) -> Result<Study, SnapError> {
    decode_study(&Snapshot::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_tags_round_trip_exhaustively() {
        for s in Service::ALL {
            assert_eq!(service_from(service_tag(s)), Some(s));
        }
        for s in ALL_SOURCES {
            assert_eq!(source_from(source_tag(s)), Some(s));
        }
        for m in ALL_MANUFACTURERS {
            assert_eq!(manufacturer_from(manufacturer_tag(m)), Some(m));
        }
        for v in AndroidVersion::ALL {
            assert_eq!(version_from(version_tag(v)), Some(v));
        }
        for o in ALL_OPERATORS {
            assert_eq!(operator_from(operator_tag(o)), Some(o));
        }
        for t in 0..=7u8 {
            assert_eq!(trust_tag(trust_from(t).unwrap()), t);
        }
        assert_eq!(trust_from(8), None);
        assert_eq!(service_from(9), None);
        assert_eq!(network_from(2), None);
        for n in [NetworkKind::Wifi, NetworkKind::Cellular] {
            assert_eq!(network_from(network_tag(n)), Some(n));
        }
    }
}
