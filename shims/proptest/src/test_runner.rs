//! Deterministic test runner: drives a strategy for N cases.

use crate::strategy::{Strategy, TestRng};
use rand::SeedableRng;

/// Per-test configuration (the `cases` knob is the one that matters).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// The inputs were rejected (`prop_assume!`); the case is retried.
    Reject(String),
}

impl TestCaseError {
    /// A failing case.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (filtered-out) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs a strategy/closure pair until the configured number of cases pass.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Fixed RNG seed: runs are deterministic across invocations.
    const SEED: u64 = 0x7072_6f70_7465_7374; // "proptest"

    /// Build a runner with the given config.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(Self::SEED),
        }
    }

    /// Run `test` against values from `strategy`. Returns the failure
    /// message of the first failing case, if any.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        // Generous reject budget, matching upstream's spirit: a test that
        // filters out nearly everything should fail loudly, not spin.
        let max_rejects = self.config.cases.saturating_mul(16).max(1024);
        while passed < self.config.cases {
            let value = strategy.generate(&mut self.rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        return Err(format!(
                            "too many rejected cases ({rejected}) before {} passes",
                            self.config.cases
                        ));
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    return Err(format!("case {} failed: {msg}", passed + 1));
                }
            }
        }
        Ok(())
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        TestRunner::new(ProptestConfig::default())
    }
}
