//! Primitive binary encoding: LEB128 varints, zigzag, framed byte
//! strings, and a bounds-checked cursor.
//!
//! Everything the container stores goes through these helpers, so the
//! hostile-input guarantees concentrate here: every read is bounds-
//! checked against the section body, varints are capped at ten bytes,
//! and declared counts are sanity-checked against the bytes that remain
//! (each record costs at least one byte), so a corrupted count can never
//! drive an allocation beyond the file's own size.

use crate::SnapError;

/// Append `v` as an LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Append a signed value, zigzag-folded into a varint.
pub fn put_varint_i64(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// A bounds-checked reader over one section body.
///
/// `section` names the body being decoded; it becomes the `section`
/// field of every [`SnapError`] the cursor raises.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8], section: &'static str) -> Cursor<'a> {
        Cursor {
            buf,
            pos: 0,
            section,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn truncated(&self) -> SnapError {
        SnapError::Truncated {
            context: self.section,
        }
    }

    /// The section name errors are attributed to.
    pub fn malformed(&self, detail: &'static str) -> SnapError {
        SnapError::Malformed {
            section: self.section,
            detail,
        }
    }

    /// Take exactly `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(self.truncated());
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// One LEB128 varint (at most ten bytes).
    pub fn varint(&mut self) -> Result<u64, SnapError> {
        let mut value = 0u64;
        for shift in 0..10 {
            let byte = self.u8()?;
            let bits = u64::from(byte & 0x7f);
            if shift == 9 && bits > 1 {
                return Err(self.malformed("varint overflows u64"));
            }
            value |= bits << (shift * 7);
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(self.malformed("varint longer than ten bytes"))
    }

    /// One zigzag-folded signed varint.
    pub fn varint_i64(&mut self) -> Result<i64, SnapError> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// A declared record count: a varint checked against the remaining
    /// bytes so hostile counts cannot drive huge allocations.
    pub fn count(&mut self) -> Result<usize, SnapError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(self.malformed("record count exceeds section size"));
        }
        Ok(n as usize)
    }

    /// A length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.varint()?;
        if len > self.remaining() as u64 {
            return Err(self.truncated());
        }
        self.take(len as usize)
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let bytes = self.bytes()?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| self.malformed("invalid utf-8 in string"))
    }

    /// Assert the body is fully consumed (sections carry no slack).
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(self.malformed("trailing bytes after last record"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut c = Cursor::new(&buf, "test");
            assert_eq!(c.varint().unwrap(), v);
            c.finish().unwrap();
        }
    }

    #[test]
    fn zigzag_round_trips_signed_values() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 1_390_000_000] {
            let mut buf = Vec::new();
            put_varint_i64(&mut buf, v);
            let mut c = Cursor::new(&buf, "test");
            assert_eq!(c.varint_i64().unwrap(), v);
        }
    }

    #[test]
    fn strings_and_bytes_round_trip() {
        let mut buf = Vec::new();
        put_str(&mut buf, "AOSP 4.4");
        put_bytes(&mut buf, &[1, 2, 3]);
        let mut c = Cursor::new(&buf, "test");
        assert_eq!(c.str().unwrap(), "AOSP 4.4");
        assert_eq!(c.bytes().unwrap(), &[1, 2, 3]);
        c.finish().unwrap();
    }

    #[test]
    fn hostile_inputs_classify_not_panic() {
        // Truncated varint.
        let mut c = Cursor::new(&[0x80], "test");
        assert_eq!(c.varint(), Err(SnapError::Truncated { context: "test" }));
        // Overlong varint.
        let mut c = Cursor::new(&[0x80; 11], "test");
        assert_eq!(c.varint().unwrap_err().label(), "malformed-record");
        // Varint overflowing 64 bits.
        let mut buf = vec![0xffu8; 9];
        buf.push(0x7f);
        let mut c = Cursor::new(&buf, "test");
        assert_eq!(c.varint().unwrap_err().label(), "malformed-record");
        // Byte string longer than the body.
        let mut buf = Vec::new();
        put_varint(&mut buf, 100);
        let mut c = Cursor::new(&buf, "test");
        assert_eq!(c.bytes().unwrap_err().label(), "truncated");
        // Count larger than the remaining bytes.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40);
        let mut c = Cursor::new(&buf, "test");
        assert_eq!(c.count().unwrap_err().label(), "malformed-record");
        // Invalid UTF-8.
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut c = Cursor::new(&buf, "test");
        assert_eq!(c.str().unwrap_err().label(), "malformed-record");
    }
}
