//! Property tests for the event core's pipelining contract.
//!
//! A client may write any number of frames — valid requests, garbage
//! bodies, even oversized frames — before reading a single reply. The
//! event core must answer every frame with exactly one reply, **in
//! request order**, resynchronising at the declared boundary after each
//! rejected frame. The oracle is the same [`TrustService`] handling the
//! same decoded requests directly, plus the classified wire-error
//! canonicals for the damaged frames.
//!
//! A second block drives the full chaos harness against the event core
//! at fault rate 1.0: every frame damaged, every failure classified, the
//! conservation invariant intact.

use proptest::prelude::*;
use std::io::{self, Read, Write};
use std::sync::atomic::AtomicBool;
use std::sync::OnceLock;
use tangled_trustd::wire::{read_frame, write_frame, Request, Response, MAX_FRAME};
use tangled_trustd::{
    canonical, chaos, serve_stream, ChaosSpec, ServeCore, TrustService, DEFAULT_CACHE_CAPACITY,
};

/// One shared service: profile installs are the expensive part and the
/// canonical verdict for a request does not depend on memo state.
fn service() -> &'static TrustService {
    static SERVICE: OnceLock<TrustService> = OnceLock::new();
    SERVICE.get_or_init(|| TrustService::new(DEFAULT_CACHE_CAPACITY))
}

/// In-memory duplex: the server reads the pipelined client bytes (EOF
/// after = client half-closed at a frame boundary) and its replies
/// collect in `output`.
struct Duplex {
    input: Vec<u8>,
    pos: usize,
    output: Vec<u8>,
}

impl Read for Duplex {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.input.len() {
            return Ok(0);
        }
        let n = buf.len().min(self.input.len() - self.pos);
        buf[..n].copy_from_slice(&self.input[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for Duplex {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.output.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// One frame in the pipelined burst.
#[derive(Debug, Clone)]
enum Item {
    /// A well-formed request (any kind; the service classifies bad
    /// chains itself).
    Req(Request),
    /// A framed body that does not decode (0xff prefix forces bad-json).
    Garbage(Vec<u8>),
    /// A frame whose header declares `MAX_FRAME + extra` bytes — the
    /// declared body follows, so the stream resyncs at its end.
    Oversized(usize),
}

fn arb_request() -> impl Strategy<Value = Request> {
    let blob = proptest::collection::vec(any::<u8>(), 0..48);
    let chain = proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..48),
        0..3,
    );
    prop_oneof![
        Just(Request::Stats),
        ("[A-Za-z0-9 .]{0,16}", chain)
            .prop_map(|(profile, chain)| Request::Validate { profile, chain }),
        blob.prop_map(|cert| Request::Classify { cert }),
    ]
}

fn arb_item() -> impl Strategy<Value = Item> {
    prop_oneof![
        6 => arb_request().prop_map(Item::Req),
        2 => proptest::collection::vec(any::<u8>(), 0..24).prop_map(|mut tail| {
            let mut body = vec![0xffu8];
            body.append(&mut tail);
            Item::Garbage(body)
        }),
        1 => (1usize..4).prop_map(Item::Oversized),
    ]
}

impl Item {
    /// Append this item's bytes to the pipelined stream.
    fn emit(&self, buf: &mut Vec<u8>) {
        match self {
            Item::Req(req) => write_frame(buf, &req.encode()).expect("bounded frame"),
            Item::Garbage(body) => write_frame(buf, body).expect("bounded frame"),
            Item::Oversized(extra) => {
                let len = MAX_FRAME + extra;
                buf.extend_from_slice(&(len as u32).to_be_bytes());
                buf.extend(std::iter::repeat_n(0u8, len));
            }
        }
    }

    /// The canonical form the reply for this item must have.
    fn expected(&self) -> String {
        match self {
            Item::Req(req) => canonical(&service().handle(req)),
            Item::Garbage(_) => "error/wire/bad-json".to_owned(),
            Item::Oversized(_) => "error/wire/oversized-frame".to_owned(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the interleaving of valid, garbage and oversized frames,
    /// the event core answers each with exactly one reply, in request
    /// order, and keeps the connection alive across rejected frames.
    #[test]
    fn pipelined_replies_arrive_in_request_order(
        items in proptest::collection::vec(arb_item(), 1..8),
    ) {
        let mut input = Vec::new();
        for item in &items {
            item.emit(&mut input);
        }
        let expected: Vec<String> = items.iter().map(Item::expected).collect();
        let valid = items
            .iter()
            .filter(|i| matches!(i, Item::Req(_)))
            .count() as u64;

        let mut stream = Duplex { input, pos: 0, output: Vec::new() };
        let stop = AtomicBool::new(false);
        let served = serve_stream(&mut stream, service(), &stop, 1000, 0);
        prop_assert_eq!(served, valid, "served counts decoded requests only");

        let mut cursor = io::Cursor::new(stream.output);
        for (i, want) in expected.iter().enumerate() {
            let frame = read_frame(&mut cursor)
                .expect("framing intact")
                .expect("one reply per pipelined frame");
            let resp = Response::decode(&frame).expect("decodable reply");
            prop_assert_eq!(
                &canonical(&resp), want,
                "reply {} out of order or misclassified", i
            );
        }
        prop_assert!(
            read_frame(&mut cursor).expect("clean end").is_none(),
            "no extra replies after the burst"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Full-rate chaos against the event core: every frame damaged, yet
    /// every issued request still resolves to answered, shed, or a
    /// classified failure — never silence.
    #[test]
    fn event_core_conserves_under_total_chaos(seed in 0u64..1024) {
        let spec = ChaosSpec {
            seed,
            requests: 8,
            rate: 1.0,
            busy_rate: 0.0,
            core: ServeCore::Event,
            ..ChaosSpec::default()
        };
        let report = chaos::run(&spec);
        prop_assert!(report.conserved(), "conservation violated:\n{}", report.ledger);
    }
}
