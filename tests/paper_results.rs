//! Integration: every table and headline statistic of the paper, checked
//! against the paper's reported values (exact where the quantity is
//! structural, banded where it is an estimate over the synthetic dataset).

use tangled_mass::analysis::classify::{addition_class_distribution, headline_stats};
use tangled_mass::analysis::figures::{figure1_summary, figure2, figure2_class_distribution};
use tangled_mass::analysis::tables;
use tangled_mass::analysis::Study;
use tangled_mass::pki::extras::Figure2Class;
use tangled_mass::pki::vocab::{AndroidVersion, Manufacturer};
use std::sync::OnceLock;

/// One shared study for the whole test binary (population at half scale,
/// ecosystem at quarter scale — the smallest sizes that preserve every
/// calibrated ordering).
fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::new(0.5, 0.25))
}

#[test]
fn table1_exact() {
    assert_eq!(
        tables::table1_data(),
        vec![
            ("AOSP 4.1", 139),
            ("AOSP 4.2", 140),
            ("AOSP 4.3", 146),
            ("AOSP 4.4", 150),
            ("iOS 7", 227),
            ("Mozilla", 153),
        ]
    );
}

#[test]
fn table2_structure() {
    let data = tables::table2_data(&study().population);
    // Top models in the paper's order (counts scale with the population).
    let models: Vec<&str> = data.top_models.iter().map(|(m, _)| m.as_str()).collect();
    assert_eq!(
        models,
        vec![
            "Samsung Galaxy SIV",
            "Samsung Galaxy SIII",
            "LG Nexus 4",
            "LG Nexus 5",
            "Asus Nexus 7"
        ]
    );
    let mfrs: Vec<&str> = data
        .top_manufacturers
        .iter()
        .map(|(m, _)| m.as_str())
        .collect();
    assert_eq!(mfrs[0], "SAMSUNG");
    assert_eq!(mfrs[1], "LG");
    assert_eq!(mfrs[2], "ASUS");
    // Table 2 ordering: Samsung dominates by more than 2×.
    assert!(data.top_manufacturers[0].1 > 2 * data.top_manufacturers[1].1);
}

#[test]
fn table3_ordering_and_near_equality() {
    let data = tables::table3_data(&study().validation);
    let get = |name: &str| {
        data.iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, c)| c)
            .unwrap()
    };
    let mozilla = get("Mozilla");
    let ios = get("iOS 7");
    let a41 = get("AOSP 4.1");
    let a42 = get("AOSP 4.2");
    let a43 = get("AOSP 4.3");
    let a44 = get("AOSP 4.4");
    assert!(mozilla < a41);
    assert_eq!(a41, a42);
    assert!(a42 < a43 && a43 < a44 && a44 < ios);
    assert!((ios - mozilla) as f64 / (mozilla as f64) < 0.05);
}

#[test]
fn table4_totals_and_dead_fractions() {
    let rows = tables::table4_data(&study().validation);
    let get = |name: &str| rows.iter().find(|r| r.category == name).unwrap();

    // Structural counts (paper / ours where the Figure 2 axis differs).
    assert_eq!(get("Non AOSP root certs found on Mozilla's").total, 16);
    assert_eq!(get("AOSP 4.4 and Mozilla root certs").total, 130);
    assert_eq!(get("AOSP 4.1 certs").total, 139);
    assert_eq!(get("AOSP 4.4 certs").total, 150);
    assert_eq!(get("Mozilla root store certs").total, 153);
    assert_eq!(get("iOS 7 root store certs").total, 227);

    // Dead fractions: paper 72 / 38 / 15 / 22 / 23 / 40 / 22 / 41 %.
    let band = |name: &str, lo: f64, hi: f64| {
        let f = get(name).dead_fraction;
        assert!((lo..=hi).contains(&f), "{name}: {f:.3} not in [{lo},{hi}]");
    };
    band("Non AOSP and Non Mozilla root certs", 0.60, 0.85);
    band("AOSP 4.4 and Mozilla root certs", 0.10, 0.25);
    band("AOSP 4.4 certs", 0.15, 0.30);
    band("Aggregated Android root certs", 0.30, 0.50);
    band("Mozilla root store certs", 0.15, 0.30);
    band("iOS 7 root store certs", 0.32, 0.50);

    // Orderings the paper's argument rests on.
    let neither = get("Non AOSP and Non Mozilla root certs").dead_fraction;
    let shared = get("AOSP 4.4 and Mozilla root certs").dead_fraction;
    let ios = get("iOS 7 root store certs").dead_fraction;
    assert!(neither > ios && ios > shared);
}

#[test]
fn table5_rooted_cas() {
    // Table 5 needs the full-scale population for its exact device counts.
    let pop = tangled_mass::netalyzr::Population::generate(
        &tangled_mass::netalyzr::PopulationSpec::default(),
    );
    let data = tables::table5_data(&pop);
    let get = |name: &str| {
        data.iter()
            .find(|(n, _)| n == name)
            .map(|&(_, c)| c)
            .unwrap()
    };
    assert_eq!(get("CRAZY HOUSE"), 70);
    assert_eq!(get("MIND OVERFLOW"), 1);
    assert_eq!(get("USER_X"), 1);
    assert_eq!(get("CDA/EMAILADDRESS"), 1);
    assert_eq!(get("CIRRUS, PRIVATE"), 1);
}

#[test]
fn table6_exact() {
    let data = tables::table6_data();
    assert_eq!(data.intercepted.len(), 12);
    assert_eq!(data.whitelisted.len(), 9);
    assert!(data.intercepted.contains(&"www.bankofamerica.com:443".to_owned()));
    assert!(data.whitelisted.contains(&"supl.google.com:7275".to_owned()));
    assert!(data.whitelisted.contains(&"orcart.facebook.com:8883".to_owned()));
    // The same host can be intercepted on one port and whitelisted on
    // another (orcart.facebook.com).
    assert!(data.intercepted.contains(&"orcart.facebook.com:443".to_owned()));
}

#[test]
fn section5_headlines() {
    let stats = headline_stats(&study().population);
    assert!(
        (0.30..=0.48).contains(&stats.extended_session_fraction),
        "39% extended, got {:.3}",
        stats.extended_session_fraction
    );
    assert_eq!(stats.devices_missing_certs, 5);

    let dist = addition_class_distribution(&study().population);
    let get = |c: Figure2Class| dist.get(&c).copied().unwrap_or(0.0);
    // Paper: 6.7 / 16.2 / 37.1 / 40.0.
    assert!((0.02..=0.12).contains(&get(Figure2Class::MozillaAndIos7)));
    assert!((0.08..=0.25).contains(&get(Figure2Class::Ios7)));
    assert!((0.25..=0.48).contains(&get(Figure2Class::OnlyAndroid)));
    assert!((0.30..=0.52).contains(&get(Figure2Class::NotRecorded)));
}

#[test]
fn section6_headlines() {
    let stats = headline_stats(&study().population);
    assert!(
        (0.18..=0.30).contains(&stats.rooted_session_fraction),
        "24% rooted, got {:.3}",
        stats.rooted_session_fraction
    );
    assert!(
        (0.02..=0.11).contains(&stats.rooted_only_share_of_rooted),
        "~6% rooted-only, got {:.3}",
        stats.rooted_only_share_of_rooted
    );
}

#[test]
fn figure1_shape() {
    let summary = figure1_summary(&study().population);
    let rate = |m: Manufacturer, v: AndroidVersion| {
        summary
            .big_bundle_rows
            .iter()
            .find(|&&(rm, rv, _)| rm == m && rv == v)
            .map(|&(_, _, f)| f)
            .unwrap_or(0.0)
    };
    // Heavy rows exceed 40 additions on >10% of sessions.
    for (m, v) in [
        (Manufacturer::Htc, AndroidVersion::V4_1),
        (Manufacturer::Htc, AndroidVersion::V4_2),
        (Manufacturer::Motorola, AndroidVersion::V4_1),
        (Manufacturer::Motorola, AndroidVersion::V4_2),
        (Manufacturer::Lg, AndroidVersion::V4_1),
        (Manufacturer::Samsung, AndroidVersion::V4_4),
    ] {
        assert!(rate(m, v) > 0.10, "{} {} big-bundle rate", m.label(), v.label());
    }
    // Near-stock vendors stay below 10 additions (so: no >40 devices).
    for (m, v) in [
        (Manufacturer::Motorola, AndroidVersion::V4_3),
        (Manufacturer::Motorola, AndroidVersion::V4_4),
        (Manufacturer::Asus, AndroidVersion::V4_2),
        (Manufacturer::Sony, AndroidVersion::V4_3),
        (Manufacturer::Huawei, AndroidVersion::V4_1),
    ] {
        assert!(rate(m, v) < 0.01, "{} {}", m.label(), v.label());
    }
}

#[test]
fn figure2_narrative() {
    let cells = figure2(&study().population);
    let dist = figure2_class_distribution(&cells);
    let total: f64 = dist.values().sum();
    assert!((total - 1.0).abs() < 1e-9);
    // Certisign on Verizon row (operator-driven addition).
    assert!(cells.iter().any(|c| {
        c.row.label() == "VERIZON(US)" && c.cert.contains("Certisign") && c.frequency > 0.1
    }));
    // AddTrust on both HTC and Samsung rows (manufacturer-driven).
    for row in ["HTC 4.1", "SAMSUNG 4.4"] {
        assert!(
            cells
                .iter()
                .any(|c| c.row.label() == row && c.cert.contains("AddTrust")),
            "AddTrust missing on {row}"
        );
    }
}

#[test]
fn all_tables_render() {
    let s = study();
    let text = tables::render_all(s);
    for needle in [
        "Table 1",
        "Table 2",
        "Table 3",
        "Table 4",
        "Table 5",
        "Table 6",
        "Galaxy SIV",
        "CRAZY HOUSE",
        "supl.google.com:7275",
    ] {
        assert!(text.contains(needle), "missing {needle}");
    }
}
