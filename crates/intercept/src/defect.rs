//! Validator-defect taxonomy and session attribution.
//!
//! Okara and "Danger is My Middle Name" (PAPERS.md) catalogue the ways
//! real Android apps break TLS validation: accept-all trust managers,
//! missing hostname verification, pin bypass, stale bundled stores. This
//! module models each defect as an explicit validator variant and, for
//! every (client, probe, presented-chain) session, answers two questions:
//!
//! 1. does *this client's* (possibly broken) validation accept the chain?
//! 2. if it does, *which defect* made the interception possible?
//!
//! Attribution is total: a session is exactly one of whitelisted (the
//! proxy's pin policy passed it through), blocked (the client rejected
//! the chain), or intercepted-with-attributed-defect. The baseline
//! "correct" validator enforces everything Android should but does not —
//! including trust-anchor expiry, the §2 Firmaprofesional criticism made
//! operational — so the only minted chain that fools a correct client is
//! one anchored at a locally-installed root, which is attributed to
//! `installed-root` rather than to any client defect.

use crate::policy::Target;
use std::sync::Arc;
use tangled_pki::store::RootStore;
use tangled_pki::stores::ReferenceStore;
use tangled_x509::{Certificate, CertIdentity, ChainError, ChainOptions, ChainVerifier};

/// A client's validator-defect profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DefectClass {
    /// Full validation: path, leaf and anchor expiry, hostname, pins.
    Correct,
    /// An accept-all trust manager: any non-empty chain passes.
    AcceptAll,
    /// Chain validation intact, hostname verification missing.
    NoHostnameCheck,
    /// Validity windows ignored (leaf and anchor alike).
    NoExpiryCheck,
    /// Certificate pins configured but never enforced.
    PinBypass,
    /// Validates against a stale bundled AOSP 4.1 store with the old
    /// platform's lax anchor-expiry semantics, ignoring the device store
    /// (and anything locally installed on it).
    StaleStore,
}

impl DefectClass {
    /// Every defect class, correct first.
    pub const ALL: [DefectClass; 6] = [
        DefectClass::Correct,
        DefectClass::AcceptAll,
        DefectClass::NoHostnameCheck,
        DefectClass::NoExpiryCheck,
        DefectClass::PinBypass,
        DefectClass::StaleStore,
    ];

    /// Stable wire/report label.
    pub fn label(&self) -> &'static str {
        match self {
            DefectClass::Correct => "correct",
            DefectClass::AcceptAll => "accept-all",
            DefectClass::NoHostnameCheck => "no-hostname-check",
            DefectClass::NoExpiryCheck => "no-expiry-check",
            DefectClass::PinBypass => "pin-bypass",
            DefectClass::StaleStore => "stale-store",
        }
    }

    /// Parse a wire label back into a class.
    pub fn parse(label: &str) -> Option<DefectClass> {
        DefectClass::ALL.into_iter().find(|d| d.label() == label)
    }
}

impl std::fmt::Display for DefectClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The conservation-ledger bucket a session lands in. Exactly one per
/// session, always.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutcome {
    /// The proxy's pin-whitelist passed the connection through untouched.
    Whitelisted,
    /// The client's validation — defective or not — rejected the chain.
    Blocked {
        /// Stable rejection label (`no-path`, `cert-check`,
        /// `hostname-mismatch`, `pin-violation`, `no-chain`, ...).
        reason: String,
    },
    /// The client accepted an interposed chain.
    Intercepted {
        /// The defect that made it possible (`installed-root` when even a
        /// correct validator would have accepted).
        attributed: String,
    },
}

impl SessionOutcome {
    /// Canonical report label, stable across runs and pool widths.
    pub fn label(&self) -> String {
        match self {
            SessionOutcome::Whitelisted => "whitelisted".to_owned(),
            SessionOutcome::Blocked { reason } => format!("blocked({reason})"),
            SessionOutcome::Intercepted { attributed } => format!("intercepted({attributed})"),
        }
    }
}

/// One (client, probe, presented-chain) session to evaluate.
pub struct SessionInput<'a> {
    /// The device's root store (platform + user/root-app installed).
    pub device_store: &'a RootStore,
    /// A root the interceptor managed to install on the device, if any.
    pub extra_anchor: Option<&'a Arc<Certificate>>,
    /// The client's validator defect.
    pub defect: DefectClass,
    /// The probed endpoint.
    pub target: &'a Target,
    /// The chain the client saw, leaf first.
    pub chain: &'a [Arc<Certificate>],
    /// Whether the client app pins the expected public-PKI issuer.
    pub pinned: bool,
    /// The expected public-PKI issuer identity (the pin).
    pub expected_issuer: &'a CertIdentity,
    /// Whether the proxy interposed on this session (false = the policy
    /// whitelisted it and the origin chain went through untouched).
    pub intercepted: bool,
}

/// Which checks a validator variant actually performs.
struct Checks {
    stale_store: bool,
    hostname: bool,
    expiry: bool,
    anchor_expiry: bool,
    pin: bool,
}

fn checks_for(defect: DefectClass) -> Option<Checks> {
    match defect {
        // Accept-all is handled before any checks run.
        DefectClass::AcceptAll => None,
        DefectClass::Correct => Some(Checks {
            stale_store: false,
            hostname: true,
            expiry: true,
            anchor_expiry: true,
            pin: true,
        }),
        DefectClass::NoHostnameCheck => Some(Checks {
            stale_store: false,
            hostname: false,
            expiry: true,
            anchor_expiry: true,
            pin: true,
        }),
        DefectClass::NoExpiryCheck => Some(Checks {
            stale_store: false,
            hostname: true,
            expiry: false,
            anchor_expiry: false,
            pin: true,
        }),
        DefectClass::PinBypass => Some(Checks {
            stale_store: false,
            hostname: true,
            expiry: true,
            anchor_expiry: true,
            pin: false,
        }),
        DefectClass::StaleStore => Some(Checks {
            stale_store: true,
            hostname: true,
            expiry: true,
            anchor_expiry: false,
            pin: true,
        }),
    }
}

/// Stable labels for path-building failures (the trustd vocabulary).
pub fn chain_error_label(err: &ChainError) -> &'static str {
    match err {
        ChainError::NoPathToTrustAnchor => "no-path",
        ChainError::CertCheck(_) => "cert-check",
        ChainError::BadSignature => "bad-signature",
        ChainError::PathTooLong => "path-too-long",
        ChainError::Blacklisted => "blacklisted",
    }
}

fn leaf_matches_host(leaf: &Certificate, domain: &str) -> bool {
    let names = leaf.dns_names();
    if names.is_empty() {
        leaf.subject.cn() == Some(domain)
    } else {
        names.iter().any(|n| n == domain)
    }
}

/// Run one validator variant over a presented chain. `Ok` carries the
/// anchor identity the path landed on; `Err` carries a stable rejection
/// label.
fn validate(s: &SessionInput<'_>, checks: &Checks) -> Result<CertIdentity, String> {
    let Some(leaf) = s.chain.first() else {
        return Err("no-chain".to_owned());
    };
    let mut verifier = ChainVerifier::new();
    if checks.stale_store {
        for cert in ReferenceStore::Aosp41.cached().enabled_certificates() {
            verifier.add_anchor(cert);
        }
    } else {
        for cert in s.device_store.enabled_certificates() {
            verifier.add_anchor(cert);
        }
        if let Some(extra) = s.extra_anchor {
            verifier.add_anchor(Arc::clone(extra));
        }
    }
    for link in &s.chain[1..] {
        verifier.add_intermediate(Arc::clone(link));
    }
    // A validator that skips expiry checks is modelled by verifying at a
    // time inside the leaf's window (with anchor expiry off): the path
    // logic still runs, only validity stops mattering.
    let study = crate::study_time();
    let at = if checks.expiry {
        study
    } else {
        let (nb, na) = (leaf.not_before.to_unix(), leaf.not_after.to_unix());
        if (nb..=na).contains(&study.to_unix()) {
            study
        } else {
            tangled_asn1::Time::from_unix(nb + (na - nb) / 2)
        }
    };
    let mut opts = ChainOptions::at(at);
    opts.check_anchor_expiry = checks.anchor_expiry;
    let anchor = match verifier.verify(leaf, opts) {
        Ok(chain) => chain.anchor().identity(),
        Err(e) => return Err(chain_error_label(&e).to_owned()),
    };
    if checks.hostname && !leaf_matches_host(leaf, &s.target.domain) {
        return Err("hostname-mismatch".to_owned());
    }
    if checks.pin && s.pinned && &anchor != s.expected_issuer {
        return Err("pin-violation".to_owned());
    }
    Ok(anchor)
}

fn client_accepts(s: &SessionInput<'_>) -> Result<(), String> {
    match checks_for(s.defect) {
        None => {
            if s.chain.is_empty() {
                Err("no-chain".to_owned())
            } else {
                Ok(())
            }
        }
        Some(checks) => validate(s, &checks).map(|_| ()),
    }
}

/// Evaluate one session into its conservation-ledger bucket.
///
/// Attribution rule: if the *correct* validator would also have accepted
/// the chain (possible only via a locally-installed root), the defect
/// class did not matter and the session is attributed `installed-root`;
/// otherwise it is attributed to the client's own defect.
pub fn evaluate_session(s: &SessionInput<'_>) -> SessionOutcome {
    if !s.intercepted {
        return SessionOutcome::Whitelisted;
    }
    if let Err(reason) = client_accepts(s) {
        return SessionOutcome::Blocked { reason };
    }
    let correct = checks_for(DefectClass::Correct).expect("correct checks");
    let attributed = if s.defect == DefectClass::Correct || validate(s, &correct).is_ok() {
        "installed-root".to_owned()
    } else {
        s.defect.label().to_owned()
    };
    SessionOutcome::Intercepted { attributed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::OriginServers;
    use crate::proxy::MitmProxy;

    fn setup() -> (OriginServers, MitmProxy, Arc<RootStore>, CertIdentity) {
        let origin = OriginServers::for_table6();
        let proxy = MitmProxy::reality_mine().unwrap();
        let store = ReferenceStore::Aosp44.cached();
        let expected = origin.issuer_identity();
        (origin, proxy, store, expected)
    }

    #[test]
    fn labels_round_trip() {
        for d in DefectClass::ALL {
            assert_eq!(DefectClass::parse(d.label()), Some(d));
        }
        assert_eq!(DefectClass::parse("nonsense"), None);
    }

    #[test]
    fn whitelisted_sessions_short_circuit() {
        let (origin, _, store, expected) = setup();
        let t = Target::parse("www.facebook.com:443").unwrap();
        let chain = origin.chain(&t).unwrap().to_vec();
        let s = SessionInput {
            device_store: &store,
            extra_anchor: None,
            defect: DefectClass::AcceptAll,
            target: &t,
            chain: &chain,
            pinned: false,
            expected_issuer: &expected,
            intercepted: false,
        };
        assert_eq!(evaluate_session(&s), SessionOutcome::Whitelisted);
    }

    #[test]
    fn correct_client_blocks_self_signed_chain() {
        let (origin, mut proxy, store, expected) = setup();
        let t = Target::parse("www.chase.com:443").unwrap();
        let chain = proxy.serve(&t, &origin).unwrap();
        let s = SessionInput {
            device_store: &store,
            extra_anchor: None,
            defect: DefectClass::Correct,
            target: &t,
            chain: &chain,
            pinned: false,
            expected_issuer: &expected,
            intercepted: true,
        };
        assert_eq!(
            evaluate_session(&s),
            SessionOutcome::Blocked {
                reason: "no-path".to_owned()
            }
        );
    }

    #[test]
    fn accept_all_client_is_attributed_accept_all() {
        let (origin, mut proxy, store, expected) = setup();
        let t = Target::parse("www.chase.com:443").unwrap();
        let chain = proxy.serve(&t, &origin).unwrap();
        let s = SessionInput {
            device_store: &store,
            extra_anchor: None,
            defect: DefectClass::AcceptAll,
            target: &t,
            chain: &chain,
            pinned: false,
            expected_issuer: &expected,
            intercepted: true,
        };
        assert_eq!(
            evaluate_session(&s),
            SessionOutcome::Intercepted {
                attributed: "accept-all".to_owned()
            }
        );
    }

    #[test]
    fn installed_root_fools_the_correct_client_and_is_attributed_so() {
        let (origin, mut proxy, store, expected) = setup();
        let t = Target::parse("www.chase.com:443").unwrap();
        let chain = proxy.serve(&t, &origin).unwrap();
        let root = Arc::clone(proxy.root_cert());
        let s = SessionInput {
            device_store: &store,
            extra_anchor: Some(&root),
            defect: DefectClass::Correct,
            target: &t,
            chain: &chain,
            pinned: false,
            expected_issuer: &expected,
            intercepted: true,
        };
        assert_eq!(
            evaluate_session(&s),
            SessionOutcome::Intercepted {
                attributed: "installed-root".to_owned()
            }
        );
        // A pinned app still catches it — even with the root installed.
        let pinned = SessionInput { pinned: true, ..s };
        assert_eq!(
            evaluate_session(&pinned),
            SessionOutcome::Blocked {
                reason: "pin-violation".to_owned()
            }
        );
    }

    #[test]
    fn wrong_host_leaf_splits_hostname_checkers_from_bypassers() {
        let (origin, _, store, expected) = setup();
        let t = Target::parse("www.chase.com:443").unwrap();
        // Present another target's perfectly valid origin chain.
        let other = Target::parse("gmail.com:443").unwrap();
        let chain = origin.chain(&other).unwrap().to_vec();
        let base = SessionInput {
            device_store: &store,
            extra_anchor: None,
            defect: DefectClass::Correct,
            target: &t,
            chain: &chain,
            pinned: false,
            expected_issuer: &expected,
            intercepted: true,
        };
        assert_eq!(
            evaluate_session(&base),
            SessionOutcome::Blocked {
                reason: "hostname-mismatch".to_owned()
            }
        );
        let broken = SessionInput {
            defect: DefectClass::NoHostnameCheck,
            ..base
        };
        assert_eq!(
            evaluate_session(&broken),
            SessionOutcome::Intercepted {
                attributed: "no-hostname-check".to_owned()
            }
        );
    }
}
