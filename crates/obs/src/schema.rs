//! The trace event-log schema and its validator.
//!
//! Every line of a trace is one JSON object. Required shape:
//!
//! * `seq` — u64, strictly `0, 1, 2, …` in line order;
//! * `kind` — one of [`EVENT_KINDS`](crate::trace::EVENT_KINDS);
//! * `stage` — non-empty string naming the emitting stage;
//! * the first line is the `run_start` event and carries `seed` (u64);
//! * `span_start`/`span_end`/`point`/`quarantine` carry `span`, 16
//!   lowercase hex chars; `span_end`, `point` and `quarantine` must
//!   reference a span some earlier `span_start` opened;
//! * `quarantine` additionally carries `q_stage` and `label` (strings,
//!   the `RunHealth` vocabulary) and `count` (u64 ≥ 1).
//!
//! Arbitrary extra fields are allowed — stages attach width-invariant
//! payloads (unit counts, seeds) — as long as they do not collide with
//! the reserved keys above. [`validate_lines`] is what the CI trace
//! smoke step and the determinism golden test run against emitted logs.

use crate::trace::EVENT_KINDS;
use serde_json::Value;
use std::collections::BTreeSet;

/// What a validated trace contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events (lines).
    pub events: usize,
    /// Spans opened (`span_start` events).
    pub spans: usize,
    /// Distinct stage names seen.
    pub stages: BTreeSet<String>,
    /// Total units quarantined across `quarantine` events.
    pub quarantined: u64,
}

fn field<'a>(v: &'a Value, key: &str, line: usize) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("line {line}: missing required field '{key}'"))
}

fn u64_field(v: &Value, key: &str, line: usize) -> Result<u64, String> {
    field(v, key, line)?
        .as_u64()
        .ok_or_else(|| format!("line {line}: field '{key}' is not a u64"))
}

fn str_field<'a>(v: &'a Value, key: &str, line: usize) -> Result<&'a str, String> {
    field(v, key, line)?
        .as_str()
        .ok_or_else(|| format!("line {line}: field '{key}' is not a string"))
}

fn is_span_hex(text: &str) -> bool {
    text.len() == 16
        && text
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Validate a trace event log (one JSON object per line) against the
/// schema, returning a summary of what it contained.
pub fn validate_lines(lines: &[String]) -> Result<TraceSummary, String> {
    if lines.is_empty() {
        return Err("empty trace: expected at least a run_start event".into());
    }
    let mut opened: BTreeSet<String> = BTreeSet::new();
    let mut summary = TraceSummary {
        events: lines.len(),
        spans: 0,
        stages: BTreeSet::new(),
        quarantined: 0,
    };
    for (i, line) in lines.iter().enumerate() {
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {i}: not valid JSON ({e:?})"))?;
        if v.as_object().is_none() {
            return Err(format!("line {i}: event is not a JSON object"));
        }
        let seq = u64_field(&v, "seq", i)?;
        if seq != i as u64 {
            return Err(format!("line {i}: seq {seq} out of order (want {i})"));
        }
        let kind = str_field(&v, "kind", i)?;
        if !EVENT_KINDS.contains(&kind) {
            return Err(format!("line {i}: unknown event kind '{kind}'"));
        }
        let stage = str_field(&v, "stage", i)?;
        if stage.is_empty() {
            return Err(format!("line {i}: empty stage name"));
        }
        summary.stages.insert(stage.to_owned());

        if i == 0 {
            if kind != "run_start" {
                return Err(format!(
                    "line 0: first event must be run_start, got '{kind}'"
                ));
            }
            u64_field(&v, "seed", i)?;
        } else if kind == "run_start" {
            return Err(format!("line {i}: run_start after the first line"));
        }

        match kind {
            "run_start" => {}
            _ => {
                let span = str_field(&v, "span", i)?;
                if !is_span_hex(span) {
                    return Err(format!(
                        "line {i}: span '{span}' is not 16 lowercase hex chars"
                    ));
                }
                match kind {
                    "span_start" => {
                        summary.spans += 1;
                        opened.insert(span.to_owned());
                    }
                    _ if !opened.contains(span) => {
                        return Err(format!(
                            "line {i}: {kind} references unopened span {span}"
                        ));
                    }
                    "quarantine" => {
                        str_field(&v, "q_stage", i)?;
                        str_field(&v, "label", i)?;
                        let count = u64_field(&v, "count", i)?;
                        if count == 0 {
                            return Err(format!("line {i}: quarantine count is zero"));
                        }
                        summary.quarantined += count;
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(s: &str) -> String {
        s.to_owned()
    }

    fn valid_trace() -> Vec<String> {
        vec![
            line(r#"{"kind":"run_start","seed":2014,"seq":0,"stage":"run"}"#),
            line(r#"{"kind":"span_start","seq":1,"span":"00000000000000ab","stage":"s"}"#),
            line(r#"{"kind":"point","seq":2,"shard":0,"span":"00000000000000ab","stage":"s"}"#),
            line(
                r#"{"count":2,"kind":"quarantine","label":"bad-json","q_stage":"wire","seq":3,"span":"00000000000000ab","stage":"s"}"#,
            ),
            line(r#"{"kind":"span_end","seq":4,"span":"00000000000000ab","stage":"s"}"#),
        ]
    }

    #[test]
    fn valid_trace_summarises() {
        let summary = validate_lines(&valid_trace()).expect("valid");
        assert_eq!(summary.events, 5);
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.quarantined, 2);
        assert!(summary.stages.contains("s"));
    }

    #[test]
    fn rejects_structural_violations() {
        assert!(validate_lines(&[]).is_err(), "empty");
        // Not JSON.
        assert!(validate_lines(&[line("nope")]).is_err());
        // First event not run_start.
        let mut t = valid_trace();
        t.remove(0);
        let t: Vec<String> = t
            .iter()
            .enumerate()
            .map(|(i, l)| l.replace(&format!("\"seq\":{}", i + 1), &format!("\"seq\":{i}")))
            .collect();
        assert!(validate_lines(&t).unwrap_err().contains("run_start"));
        // Out-of-order seq.
        let mut t = valid_trace();
        t[2] = t[2].replace("\"seq\":2", "\"seq\":7");
        assert!(validate_lines(&t).unwrap_err().contains("out of order"));
        // Unknown kind.
        let mut t = valid_trace();
        t[2] = t[2].replace("\"kind\":\"point\"", "\"kind\":\"warp\"");
        assert!(validate_lines(&t).unwrap_err().contains("unknown event kind"));
        // Bad span hex.
        let mut t = valid_trace();
        t[1] = t[1].replace("00000000000000ab", "XYZ");
        assert!(validate_lines(&t).unwrap_err().contains("hex"));
        // Reference to a span never opened.
        let mut t = valid_trace();
        t[4] = t[4].replace("00000000000000ab", "00000000000000cd");
        assert!(validate_lines(&t).unwrap_err().contains("unopened"));
        // Quarantine without a label.
        let mut t = valid_trace();
        t[3] = t[3].replace("\"label\":\"bad-json\",", "");
        assert!(validate_lines(&t).unwrap_err().contains("label"));
    }
}
