//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the subset of serde_json this workspace uses: the
//! [`Value`] model, the [`json!`] macro, [`to_string`] /
//! [`to_string_pretty`] / [`from_str`], and a pair of lightweight
//! [`Serialize`] / [`Deserialize`] traits (value-based, no derive) that
//! types implement by hand. Float serialization keeps a decimal point on
//! integral floats so every document round-trips to an equal [`Value`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod text;
mod value;

pub use value::{Number, Value};

/// Serialization/deserialization failure.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error carrying `message`.
    pub fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a JSON [`Value`] (hand-written, no derive).
pub trait Serialize {
    /// The JSON form of `self`.
    fn to_json_value(&self) -> Value;
}

/// Types reconstructible from a JSON [`Value`] (hand-written, no derive).
pub trait Deserialize: Sized {
    /// Rebuild `Self` from its JSON form.
    fn from_json_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Serialize compactly.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    text::write_compact(&value.to_json_value(), &mut out);
    Ok(out)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    text::write_pretty(&value.to_json_value(), &mut out);
    Ok(out)
}

/// Parse a JSON document into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = text::parse(input)?;
    T::from_json_value(&value)
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        text::write_compact(self, &mut out);
        f.write_str(&out)
    }
}

/// Build a [`Value`] from JSON-looking syntax with interpolated Rust
/// expressions, as in serde_json.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Internal tt-muncher behind [`json!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ----- arrays: accumulate elements into [$($elems:expr,)*] -----
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- objects: munch key tokens, then the value after ':' -----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };

    // ----- primary forms -----
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object(::std::collections::BTreeMap::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = ::std::collections::BTreeMap::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::Value::from($other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn macro_builds_nested_documents() {
        let xs: Vec<Value> = vec![json!([1, 0.5]), json!([2, 1.0])];
        let classes: BTreeMap<String, f64> =
            [("a".to_owned(), 0.25), ("b".to_owned(), 0.75)].into();
        let doc = json!({
            "version": 2u32,
            "name": "tangled",
            "empty_list": [],
            "empty_map": {},
            "nested": { "flag": true, "missing": null },
            "pairs": xs,
            "classes": classes,
            "inline": [1, "two", 3.5, false],
        });
        assert_eq!(doc["version"], 2u32);
        assert_eq!(doc["name"], "tangled");
        assert_eq!(doc["nested"]["flag"], true);
        assert!(doc["nested"]["missing"].is_null());
        assert!(doc["missing_key"].is_null());
        assert_eq!(doc["pairs"][1][0], 2);
        assert_eq!(doc["pairs"][1][1].as_f64(), Some(1.0));
        assert_eq!(doc["classes"]["b"].as_f64(), Some(0.75));
        assert_eq!(doc["inline"][1], "two");
    }

    #[test]
    fn round_trip_preserves_equality() {
        let doc = json!({
            "ints": [0, 1, 150, 18446744073709551615u64, -42],
            "floats": [0.0, 1.0, 0.125, 4.16, 1e-5],
            "strings": ["", "with \"quotes\"", "line\nbreak", "päivää"],
            "nested": { "deep": [{ "leaf": null }] },
        });
        let compact = to_string(&doc).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, doc);
        let pretty = to_string_pretty(&doc).unwrap();
        let back_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(back_pretty, doc);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = to_string(&json!({ "x": 1.0 })).unwrap();
        assert_eq!(text, r#"{"x":1.0}"#);
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back["x"], 1.0);
        assert!(back["x"].as_u64().is_none());
    }

    #[test]
    fn integers_and_floats_are_distinct() {
        assert_ne!(json!(1), json!(1.0));
        assert_eq!(json!(5).as_u64(), Some(5));
        assert_eq!(json!(-5).as_i64(), Some(-5));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nul",
            "\"unterminated",
            "01x",
            "[1] trailing",
            "{\"a\": }",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let original = json!("tab\there \"and\" back\\slash\u{1}");
        let text = to_string(&original).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, original);
    }
}
