//! Property tests for store diffing under name collisions.
//!
//! The §5.2 "(+unusual)" sprinkle clones a firmware store under the
//! *same display name* and adds anchors, so two stores named alike can
//! hold different content. Every property here pins the invariant that
//! makes that safe: [`diff`] keys on certificate identity (subject +
//! modulus) and **never** on store or anchor names — renaming a store
//! changes nothing, and identical names hide nothing.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};
use tangled_pki::diff::{diff, diff_sorted_merge};
use tangled_pki::factory::CaFactory;
use tangled_pki::store::RootStore;
use tangled_pki::stores::{global_factory, unusual_clone, ReferenceStore};
use tangled_pki::trust::AnchorSource;
use tangled_x509::{CertIdentity, Certificate};

/// A fixed pool of distinct roots the subset strategies draw from.
const POOL_SIZE: usize = 12;

fn pool() -> &'static [Arc<Certificate>] {
    static POOL: OnceLock<Vec<Arc<Certificate>>> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut f = CaFactory::with_seed(0xD1FF, 512);
        (0..POOL_SIZE)
            .map(|i| f.root(&format!("Diff Pool Root CA {i:02}")))
            .collect()
    })
}

fn store_of(name: &str, picks: &BTreeSet<usize>) -> RootStore {
    let mut store = RootStore::new(name);
    for &i in picks {
        store.add_cert(Arc::clone(&pool()[i]), AnchorSource::Aosp);
    }
    store
}

fn identity_set(ids: &[CertIdentity]) -> BTreeSet<CertIdentity> {
    ids.iter().cloned().collect()
}

fn arb_picks() -> impl Strategy<Value = BTreeSet<usize>> {
    proptest::collection::vec(0usize..POOL_SIZE, 0..POOL_SIZE)
        .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two same-named stores diff exactly by content: added = B \ A,
    /// removed = A \ B, common = A ∩ B, as identity sets.
    #[test]
    fn same_named_stores_diff_by_content(a in arb_picks(), b in arb_picks()) {
        let base = store_of("Collider", &a);
        let observed = store_of("Collider", &b);
        let d = diff(&base, &observed);
        let want_added: BTreeSet<usize> = b.difference(&a).copied().collect();
        let want_removed: BTreeSet<usize> = a.difference(&b).copied().collect();
        let want_common: BTreeSet<usize> = a.intersection(&b).copied().collect();
        let ids = |picks: &BTreeSet<usize>| -> BTreeSet<CertIdentity> {
            picks.iter().map(|&i| pool()[i].identity()).collect()
        };
        prop_assert_eq!(identity_set(&d.added), ids(&want_added));
        prop_assert_eq!(identity_set(&d.removed), ids(&want_removed));
        prop_assert_eq!(identity_set(&d.common), ids(&want_common));
        prop_assert_eq!(d.is_identity(), a == b,
            "same display name must not make unequal stores diff clean");
    }

    /// Renaming either store changes nothing about the diff.
    #[test]
    fn diff_ignores_store_names(a in arb_picks(), b in arb_picks()) {
        let colliding = diff(&store_of("Same", &a), &store_of("Same", &b));
        let distinct = diff(&store_of("Baseline", &a), &store_of("Observed", &b));
        prop_assert_eq!(colliding, distinct);
    }

    /// The hash join and the sorted merge agree as sets (their output
    /// orders differ by design).
    #[test]
    fn hash_join_agrees_with_sorted_merge(a in arb_picks(), b in arb_picks()) {
        let base = store_of("Collider", &a);
        let observed = store_of("Collider", &b);
        let hj = diff(&base, &observed);
        let sm = diff_sorted_merge(&base, &observed);
        prop_assert_eq!(identity_set(&hj.added), identity_set(&sm.added));
        prop_assert_eq!(identity_set(&hj.removed), identity_set(&sm.removed));
        prop_assert_eq!(identity_set(&hj.common), identity_set(&sm.common));
    }

    /// The §5.2 near-clone: an "(+unusual)" clone shares the base's name
    /// and all of its anchors, plus `extra` additions — the diff reports
    /// exactly those additions and nothing removed, in both directions.
    #[test]
    fn unusual_clone_diffs_as_pure_addition(which in 0usize..6, extra in 0usize..5) {
        let base = ReferenceStore::ALL[which].cached();
        let clone = {
            let mut f = global_factory().lock().expect("factory poisoned");
            unusual_clone(&mut f, &base, extra)
        };
        prop_assert_eq!(clone.name(), base.name(), "clone keeps the display name");
        let forward = diff(&base, &clone);
        prop_assert_eq!(forward.added_count(), extra);
        prop_assert_eq!(forward.removed_count(), 0);
        prop_assert_eq!(forward.common.len(), base.len());
        prop_assert_eq!(forward.is_identity(), extra == 0);
        let reverse = diff(&clone, &base);
        prop_assert_eq!(reverse.added_count(), 0);
        prop_assert_eq!(reverse.removed_count(), extra);
    }
}
