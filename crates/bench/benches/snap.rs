//! Snapshot persistence benchmarks (DESIGN.md §12).
//!
//! The number the subsystem exists for: cold-generating a study from the
//! seed versus loading the same study back from a snapshot file. Encode
//! and journal-append rates ride along so regressions in the wire format
//! show up without a profiler.

use criterion::black_box;
use tangled_bench::criterion;
use tangled_core::Study;
use tangled_exec::ExecPool;
use tangled_pki::stores::ReferenceStore;
use tangled_snap::{decode_study, encode_study, Journal, Snapshot, SwapRecord};

fn main() {
    let mut c = criterion();

    let scale = 0.25;
    let study = Study::new(scale, scale);
    let bytes = encode_study(&study, &ExecPool::current());
    println!(
        "snapshot at scale {scale}: {} bytes, {} section-body bytes",
        bytes.len(),
        Snapshot::parse(bytes.clone())
            .expect("own bytes parse")
            .entries()
            .iter()
            .map(|e| e.len)
            .sum::<u64>()
    );

    // The headline comparison: cold generate vs snapshot load.
    c.bench_function("snap/cold_generate", |b| {
        b.iter(|| black_box(Study::new(scale, scale).population.devices.len()))
    });
    c.bench_function("snap/load", |b| {
        b.iter(|| {
            let snap = Snapshot::parse(bytes.clone()).expect("parses");
            black_box(decode_study(&snap).expect("decodes").population.devices.len())
        })
    });

    // Encode at width 1 vs 4: the section bodies shard over the pool.
    for width in [1usize, 4] {
        let pool = ExecPool::with_threads(width);
        c.bench_function(&format!("snap/encode_{width}t"), |b| {
            b.iter(|| black_box(encode_study(&study, &pool).len()))
        });
    }

    // Journal append+fsync rate, the cost a trustd swap pays up front.
    let dir = std::env::temp_dir().join("tangled-bench-snap");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("bench-{}.jrn", std::process::id()));
    let record = SwapRecord {
        profile: "bench".into(),
        epoch: 1,
        store: ReferenceStore::Mozilla.cached().snapshot(),
    };
    c.bench_function("snap/journal_append_fsync", |b| {
        let _ = std::fs::remove_file(&path);
        let (mut journal, _, _) = Journal::open(path.to_str().unwrap()).expect("opens");
        b.iter(|| journal.append(black_box(&record)).expect("appends"))
    });
    let _ = std::fs::remove_file(&path);

    c.final_summary();
}
