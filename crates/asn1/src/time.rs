//! Calendar time for certificate validity periods.
//!
//! A minimal proleptic-Gregorian UTC time type with conversions to and from
//! the ASN.1 `UTCTime` (`YYMMDDHHMMSSZ`) and `GeneralizedTime`
//! (`YYYYMMDDHHMMSSZ`) content encodings, plus a total order via Unix
//! seconds. No external time crate is needed (or allowed).

use crate::Asn1Error;

/// A UTC calendar time with one-second resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Time {
    /// Full year, e.g. 2014.
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31 (validated against the month).
    pub day: u8,
    /// Hour 0–23.
    pub hour: u8,
    /// Minute 0–59.
    pub minute: u8,
    /// Second 0–59 (leap seconds are not modelled).
    pub second: u8,
}

impl Time {
    /// Construct a validated time.
    pub fn new(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> Option<Time> {
        if !(1..=12).contains(&month)
            || day == 0
            || day > days_in_month(year, month)
            || hour > 23
            || minute > 59
            || second > 59
        {
            return None;
        }
        Some(Time {
            year,
            month,
            day,
            hour,
            minute,
            second,
        })
    }

    /// Midnight on the given date.
    pub fn date(year: i32, month: u8, day: u8) -> Option<Time> {
        Time::new(year, month, day, 0, 0, 0)
    }

    /// Seconds since the Unix epoch (negative before 1970).
    pub fn to_unix(&self) -> i64 {
        let days = days_from_civil(self.year, self.month, self.day);
        days * 86_400 + self.hour as i64 * 3_600 + self.minute as i64 * 60 + self.second as i64
    }

    /// Inverse of [`Time::to_unix`].
    pub fn from_unix(secs: i64) -> Time {
        let days = secs.div_euclid(86_400);
        let rem = secs.rem_euclid(86_400);
        let (year, month, day) = civil_from_days(days);
        Time {
            year,
            month,
            day,
            hour: (rem / 3_600) as u8,
            minute: (rem % 3_600 / 60) as u8,
            second: (rem % 60) as u8,
        }
    }

    /// This time plus a number of days (may be negative).
    pub fn plus_days(&self, days: i64) -> Time {
        Time::from_unix(self.to_unix() + days * 86_400)
    }

    /// `YYMMDDHHMMSSZ` per RFC 5280 (§4.1.2.5.1); only valid for 1950–2049.
    pub fn to_utc_time_string(&self) -> String {
        debug_assert!((1950..2050).contains(&self.year), "UTCTime year range");
        format!(
            "{:02}{:02}{:02}{:02}{:02}{:02}Z",
            self.year % 100,
            self.month,
            self.day,
            self.hour,
            self.minute,
            self.second
        )
    }

    /// `YYYYMMDDHHMMSSZ` per RFC 5280 (§4.1.2.5.2).
    pub fn to_generalized_time_string(&self) -> String {
        format!(
            "{:04}{:02}{:02}{:02}{:02}{:02}Z",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )
    }

    /// Parse UTCTime content octets. Two-digit years follow the RFC 5280
    /// rule: `YY >= 50` → 19YY, else 20YY.
    pub fn parse_utc_time(content: &[u8]) -> Result<Time, Asn1Error> {
        if content.len() != 13 || content[12] != b'Z' {
            return Err(Asn1Error::BadValue("malformed UTCTime"));
        }
        let d = parse_digits(&content[..12])?;
        let yy = d[0] as i32 * 10 + d[1] as i32;
        let year = if yy >= 50 { 1900 + yy } else { 2000 + yy };
        build_time(year, &d[2..])
    }

    /// Parse GeneralizedTime content octets (the `YYYYMMDDHHMMSSZ` form DER
    /// requires; fractional seconds and offsets are rejected).
    pub fn parse_generalized_time(content: &[u8]) -> Result<Time, Asn1Error> {
        if content.len() != 15 || content[14] != b'Z' {
            return Err(Asn1Error::BadValue("malformed GeneralizedTime"));
        }
        let d = parse_digits(&content[..14])?;
        let year = d[0] as i32 * 1000 + d[1] as i32 * 100 + d[2] as i32 * 10 + d[3] as i32;
        build_time(year, &d[4..])
    }
}

fn build_time(year: i32, d: &[u8]) -> Result<Time, Asn1Error> {
    Time::new(
        year,
        d[0] * 10 + d[1],
        d[2] * 10 + d[3],
        d[4] * 10 + d[5],
        d[6] * 10 + d[7],
        d[8] * 10 + d[9],
    )
    .ok_or(Asn1Error::BadValue("out-of-range time"))
}

fn parse_digits(bytes: &[u8]) -> Result<Vec<u8>, Asn1Error> {
    bytes
        .iter()
        .map(|&b| {
            if b.is_ascii_digit() {
                Ok(b - b'0')
            } else {
                Err(Asn1Error::BadValue("non-digit in time"))
            }
        })
        .collect()
}

fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap_year(year) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Days since 1970-01-01 (Howard Hinnant's `days_from_civil` algorithm).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = y as i64 - (m <= 2) as i64;
    let era = y.div_euclid(400);
    let yoe = y - era * 400;
    let doy = (153 * (m as i64 + if m > 2 { -3 } else { 9 }) + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
    ((y + (m <= 2) as i64) as i32, m, d)
}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.to_unix().cmp(&other.to_unix())
    }
}

impl std::fmt::Display for Time {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unix_epoch() {
        let t = Time::new(1970, 1, 1, 0, 0, 0).unwrap();
        assert_eq!(t.to_unix(), 0);
        assert_eq!(Time::from_unix(0), t);
    }

    #[test]
    fn known_timestamps() {
        // 2014-12-02 00:00:00 UTC (CoNEXT'14 start) = 1417478400.
        let t = Time::date(2014, 12, 2).unwrap();
        assert_eq!(t.to_unix(), 1_417_478_400);
        // 2000-02-29 exists (leap year divisible by 400).
        assert!(Time::date(2000, 2, 29).is_some());
        // 1900-02-29 does not (divisible by 100, not 400).
        assert!(Time::date(1900, 2, 29).is_none());
    }

    #[test]
    fn unix_round_trip_sweep() {
        for secs in [
            -86_400i64,
            -1,
            0,
            1,
            951_782_400,   // 2000-02-29
            1_000_000_000,
            1_385_856_000, // 2013-12-01
            4_102_444_800, // 2100-01-01
        ] {
            assert_eq!(Time::from_unix(secs).to_unix(), secs, "secs={secs}");
        }
    }

    #[test]
    fn validation_rejects_bad_fields() {
        assert!(Time::new(2014, 0, 1, 0, 0, 0).is_none());
        assert!(Time::new(2014, 13, 1, 0, 0, 0).is_none());
        assert!(Time::new(2014, 4, 31, 0, 0, 0).is_none());
        assert!(Time::new(2014, 1, 1, 24, 0, 0).is_none());
        assert!(Time::new(2014, 1, 1, 0, 60, 0).is_none());
        assert!(Time::new(2014, 1, 1, 0, 0, 60).is_none());
    }

    #[test]
    fn utc_time_round_trip() {
        let t = Time::new(2013, 10, 5, 14, 30, 9).unwrap();
        let s = t.to_utc_time_string();
        assert_eq!(s, "131005143009Z");
        assert_eq!(Time::parse_utc_time(s.as_bytes()).unwrap(), t);
    }

    #[test]
    fn utc_time_century_pivot() {
        // YY >= 50 → 19YY.
        let t = Time::parse_utc_time(b"500101000000Z").unwrap();
        assert_eq!(t.year, 1950);
        let t = Time::parse_utc_time(b"491231235959Z").unwrap();
        assert_eq!(t.year, 2049);
    }

    #[test]
    fn generalized_time_round_trip() {
        let t = Time::new(2051, 3, 2, 1, 0, 59).unwrap();
        let s = t.to_generalized_time_string();
        assert_eq!(s, "20510302010059Z");
        assert_eq!(Time::parse_generalized_time(s.as_bytes()).unwrap(), t);
    }

    #[test]
    fn malformed_times_rejected() {
        assert!(Time::parse_utc_time(b"1310051430Z").is_err()); // too short
        assert!(Time::parse_utc_time(b"131005143009+").is_err()); // no Z
        assert!(Time::parse_utc_time(b"13a005143009Z").is_err()); // non-digit
        assert!(Time::parse_utc_time(b"131305143009Z").is_err()); // month 13
        assert!(Time::parse_generalized_time(b"20140101000000").is_err());
        assert!(Time::parse_generalized_time(b"20141301000000Z").is_err());
    }

    #[test]
    fn ordering_and_plus_days() {
        let a = Time::date(2013, 11, 1).unwrap();
        let b = Time::date(2014, 4, 30).unwrap();
        assert!(a < b);
        assert_eq!(a.plus_days(1), Time::date(2013, 11, 2).unwrap());
        assert_eq!(a.plus_days(-1), Time::date(2013, 10, 31).unwrap());
        // Crossing a leap day.
        assert_eq!(
            Time::date(2012, 2, 28).unwrap().plus_days(1),
            Time::date(2012, 2, 29).unwrap()
        );
    }

    #[test]
    fn display_format() {
        let t = Time::new(2014, 12, 2, 9, 5, 0).unwrap();
        assert_eq!(t.to_string(), "2014-12-02T09:05:00Z");
    }
}
