//! Delta snapshots: a `TNGLSNP1` container carrying only what changed.
//!
//! A longitudinal study is a *chain* of snapshot files: one full base
//! snapshot followed by deltas, each recording the id of the file it
//! applies over plus only the sections whose bytes differ. Section-level
//! dedup rides on the container's existing per-section FNV-1a checksums:
//! a section whose checksum matches the base is *reused* — the delta
//! records `(tag, checksum)` in its [`SectionId::DeltaMeta`] section
//! instead of carrying the body.
//!
//! A delta file is a perfectly ordinary container (same magic, same
//! section table, `snap verify` works on it); what makes it a delta is
//! the presence of the `delta-meta` section:
//!
//! ```text
//! delta-meta := base_id u64       (FNV-1a over the predecessor file's
//!                                  bytes; 0 = applies over nothing)
//!               epoch   varint    (point-in-time label)
//!               reused  varint ×{ tag u8, checksum u64 }
//! ```
//!
//! `base_id + reused + changed` pins the materialised state completely:
//! [`materialize`] starts from the base file, verifies each link's
//! `base_id` against the bytes of the file before it, substitutes the
//! changed sections, checks every reused section's bytes against the
//! recorded checksum, and reassembles a full container in canonical
//! section order — **byte-identical** to a full snapshot of the same
//! state, at any encoding pool width. Any damage — a swapped base, a
//! reused section whose bytes drifted, a truncated chain — classifies as
//! a [`SnapError`], never a panic.

use crate::container::{assemble_tagged, SectionId, Snapshot};
use crate::wire::{put_varint, Cursor};
use crate::SnapError;
use tangled_crypto::hash::fnv1a;

/// `base_id` of a delta that applies over nothing (a chain head that is
/// not a full snapshot, e.g. a checkpoint taken by a cold-started
/// server).
pub const DELTA_BASE_NONE: u64 = 0;

/// The id of a snapshot file: the FNV-1a 64 fold over its full bytes.
pub fn file_id(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

/// The decoded `delta-meta` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaMeta {
    /// [`file_id`] of the predecessor file in the chain
    /// ([`DELTA_BASE_NONE`] when the delta applies over nothing).
    pub base_id: u64,
    /// The point-in-time label [`materialize`] selects on.
    pub epoch: u64,
    /// Sections taken from the accumulated base state, as
    /// `(tag, expected checksum)`.
    pub reused: Vec<(u8, u64)>,
}

/// Encode a [`DeltaMeta`] as the `delta-meta` section body.
pub fn encode_delta_meta(meta: &DeltaMeta) -> Vec<u8> {
    let mut out = Vec::with_capacity(18 + meta.reused.len() * 9);
    out.extend_from_slice(&meta.base_id.to_le_bytes());
    put_varint(&mut out, meta.epoch);
    put_varint(&mut out, meta.reused.len() as u64);
    for (tag, checksum) in &meta.reused {
        out.push(*tag);
        out.extend_from_slice(&checksum.to_le_bytes());
    }
    out
}

/// Decode a container's `delta-meta` section. `Ok(None)` means the file
/// is a full snapshot, not a delta.
pub fn decode_delta_meta(snap: &Snapshot) -> Result<Option<DeltaMeta>, SnapError> {
    let tag = SectionId::DeltaMeta.tag();
    if !snap.entries().iter().any(|e| e.tag == tag) {
        return Ok(None);
    }
    let body = snap.section(SectionId::DeltaMeta)?;
    let mut c = Cursor::new(body, SectionId::DeltaMeta.name());
    let base_id = u64::from_le_bytes(c.take(8)?.try_into().expect("8 bytes"));
    let epoch = c.varint()?;
    let n = c.count()?;
    let mut reused = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = c.u8()?;
        let checksum = u64::from_le_bytes(c.take(8)?.try_into().expect("8 bytes"));
        if reused.iter().any(|(t, _)| *t == tag) {
            return Err(c.malformed("duplicate reused section tag"));
        }
        reused.push((tag, checksum));
    }
    c.finish()?;
    Ok(Some(DeltaMeta {
        base_id,
        epoch,
        reused,
    }))
}

/// What [`encode_delta`] produced — the CLI's report.
#[derive(Debug)]
pub struct DeltaSummary {
    /// The delta file bytes.
    pub bytes: Vec<u8>,
    /// Names of sections carried in the delta (their bytes changed).
    pub changed: Vec<&'static str>,
    /// Names of sections deduplicated against the base.
    pub reused: Vec<&'static str>,
}

/// Build a delta file from fully-encoded section bodies and the
/// predecessor file's bytes. Sections whose FNV-1a checksum matches the
/// predecessor's table entry for the same tag are reused; the rest ride
/// in the delta. `sections` must be the *complete* section list of the
/// target state, in canonical tag order — materialisation reproduces
/// exactly these sections and nothing else.
pub fn encode_delta(
    sections: &[(SectionId, Vec<u8>)],
    base: &[u8],
    epoch: u64,
) -> Result<DeltaSummary, SnapError> {
    let base_snap = Snapshot::parse(base.to_vec())?;
    let mut meta = DeltaMeta {
        base_id: file_id(base),
        epoch,
        reused: Vec::new(),
    };
    let mut changed: Vec<(u8, &[u8])> = Vec::new();
    let mut changed_names = Vec::new();
    let mut reused_names = Vec::new();
    for (id, body) in sections {
        let checksum = fnv1a(body);
        let same = base_snap
            .entries()
            .iter()
            .any(|e| e.tag == id.tag() && e.checksum == checksum && e.len == body.len() as u64);
        if same {
            meta.reused.push((id.tag(), checksum));
            reused_names.push(id.name());
        } else {
            changed.push((id.tag(), body.as_slice()));
            changed_names.push(id.name());
        }
    }
    tangled_obs::registry::add("snap.delta_sections_reused", reused_names.len() as u64);

    let meta_body = encode_delta_meta(&meta);
    let mut file_sections: Vec<(u8, &[u8])> =
        vec![(SectionId::DeltaMeta.tag(), meta_body.as_slice())];
    file_sections.extend(changed);
    // Table order is deterministic: delta-meta first (so a reader knows
    // immediately what kind of file this is), then changed sections in
    // canonical tag order.
    Ok(DeltaSummary {
        bytes: assemble_tagged(&file_sections),
        changed: changed_names,
        reused: reused_names,
    })
}

/// A materialised point in time.
#[derive(Debug)]
pub struct Materialized {
    /// Full container bytes — byte-identical to a full snapshot of the
    /// same state.
    pub bytes: Vec<u8>,
    /// How many chain files contributed (base plus applied deltas).
    pub applied: usize,
    /// The epoch label of the last applied delta (0 when only the base
    /// applied).
    pub epoch: u64,
}

/// Materialise a snapshot chain at a point in time.
///
/// `files` is the chain in order: a head (a full snapshot, or a delta
/// with [`DELTA_BASE_NONE`]) followed by deltas. Deltas apply in order
/// while their epoch label is ≤ `epoch`; the first delta beyond it ends
/// the walk — a point in time is a prefix of the chain. Every link is
/// verified: the delta's `base_id` must equal [`file_id`] of the file
/// before it ([`SnapError::BaseMismatch`] otherwise), every reused
/// section must exist in the accumulated state with exactly the
/// recorded checksum, and changed sections are checksum-verified as
/// they are lifted out of the delta.
pub fn materialize(files: &[Vec<u8>], epoch: u64) -> Result<Materialized, SnapError> {
    let Some((head, deltas)) = files.split_first() else {
        return Err(SnapError::Malformed {
            section: "delta-meta",
            detail: "empty snapshot chain",
        });
    };

    // Accumulated state: (tag, body bytes), rebuilt per applied delta.
    let head_snap = Snapshot::parse(head.clone())?;
    let mut state: Vec<(u8, Vec<u8>)> = Vec::new();
    let mut applied = 1usize;
    let mut last_epoch = 0u64;
    match decode_delta_meta(&head_snap)? {
        None => {
            for entry in head_snap.entries() {
                state.push((entry.tag, head_snap.entry_body(entry)?.to_vec()));
            }
        }
        Some(meta) => {
            // A chain head that is itself a delta applies over nothing:
            // it must not claim a base and cannot reuse any section.
            if meta.base_id != DELTA_BASE_NONE {
                return Err(SnapError::BaseMismatch {
                    recorded: meta.base_id,
                    actual: DELTA_BASE_NONE,
                });
            }
            if !meta.reused.is_empty() {
                return Err(SnapError::Malformed {
                    section: "delta-meta",
                    detail: "base-less delta reuses sections",
                });
            }
            if meta.epoch > epoch {
                return Err(SnapError::Malformed {
                    section: "delta-meta",
                    detail: "requested epoch precedes the chain head",
                });
            }
            last_epoch = meta.epoch;
            apply_delta(&mut state, &head_snap, &meta)?;
        }
    }

    let mut prev_id = file_id(head);
    for bytes in deltas {
        let snap = Snapshot::parse(bytes.clone())?;
        let meta = decode_delta_meta(&snap)?.ok_or(SnapError::Malformed {
            section: "delta-meta",
            detail: "chain element is not a delta",
        })?;
        if meta.base_id != prev_id {
            return Err(SnapError::BaseMismatch {
                recorded: meta.base_id,
                actual: prev_id,
            });
        }
        if meta.epoch > epoch {
            break;
        }
        apply_delta(&mut state, &snap, &meta)?;
        last_epoch = meta.epoch;
        prev_id = file_id(bytes);
        applied += 1;
    }

    // Canonical order: ascending tag, which is [`SectionId::ALL`] order
    // for every known section — the same layout `encode_study` emits,
    // which is what makes materialised bytes equal full-snapshot bytes.
    state.sort_by_key(|(tag, _)| *tag);
    let sections: Vec<(u8, &[u8])> = state
        .iter()
        .map(|(tag, body)| (*tag, body.as_slice()))
        .collect();
    Ok(Materialized {
        bytes: assemble_tagged(&sections),
        applied,
        epoch: last_epoch,
    })
}

/// Read a chain of files and materialise it at `epoch`.
pub fn materialize_chain(paths: &[String], epoch: u64) -> Result<Materialized, SnapError> {
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        files.push(std::fs::read(path)?);
    }
    materialize(&files, epoch)
}

/// Replace the accumulated state with exactly the sections this delta
/// describes: reused ones are carried over (checksum-verified), changed
/// ones are lifted out of the delta file.
fn apply_delta(
    state: &mut Vec<(u8, Vec<u8>)>,
    snap: &Snapshot,
    meta: &DeltaMeta,
) -> Result<(), SnapError> {
    let mut next: Vec<(u8, Vec<u8>)> = Vec::with_capacity(snap.entries().len());
    for (tag, checksum) in &meta.reused {
        let body = state
            .iter()
            .find(|(t, _)| t == tag)
            .map(|(_, b)| b)
            .ok_or(SnapError::MissingSection {
                section: SectionId::from_tag(*tag)
                    .map(SectionId::name)
                    .unwrap_or("unknown"),
            })?;
        if fnv1a(body) != *checksum {
            return Err(SnapError::ChecksumMismatch {
                section: SectionId::from_tag(*tag)
                    .map(SectionId::name)
                    .unwrap_or("unknown"),
            });
        }
        next.push((*tag, body.clone()));
    }
    for entry in snap.entries() {
        if entry.tag == SectionId::DeltaMeta.tag() {
            continue;
        }
        // A changed section the format does not know cannot have come
        // from `encode_delta` — rejecting it here keeps a flipped tag
        // byte from materialising as a silent wrong answer.
        if SectionId::from_tag(entry.tag).is_none() {
            return Err(SnapError::Malformed {
                section: "delta-meta",
                detail: "delta carries an unknown section tag",
            });
        }
        if next.iter().any(|(t, _)| *t == entry.tag) {
            return Err(SnapError::Malformed {
                section: "delta-meta",
                detail: "section both reused and changed",
            });
        }
        next.push((entry.tag, snap.entry_body(entry)?.to_vec()));
    }
    *state = next;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::assemble;

    fn full(meta: &[u8], corpus: &[u8]) -> Vec<u8> {
        assemble(&[
            (SectionId::Meta, meta.to_vec()),
            (SectionId::Corpus, corpus.to_vec()),
        ])
    }

    #[test]
    fn delta_reuses_unchanged_sections_and_materialises_exactly() {
        let base = full(b"m1", b"c1");
        let target = [
            (SectionId::Meta, b"m1".to_vec()),
            (SectionId::Corpus, b"c2".to_vec()),
        ];
        let delta = encode_delta(&target, &base, 5).unwrap();
        assert_eq!(delta.reused, vec!["meta"]);
        assert_eq!(delta.changed, vec!["corpus"]);
        let delta_snap = Snapshot::parse(delta.bytes.clone()).unwrap();
        let tags: Vec<u8> = delta_snap.entries().iter().map(|e| e.tag).collect();
        assert_eq!(
            tags,
            vec![SectionId::DeltaMeta.tag(), SectionId::Corpus.tag()],
            "carries corpus only, not the reused meta"
        );

        let m = materialize(&[base, delta.bytes], 5).unwrap();
        assert_eq!(m.applied, 2);
        assert_eq!(m.epoch, 5);
        assert_eq!(m.bytes, full(b"m1", b"c2"), "byte-identical to a full snapshot");
    }

    #[test]
    fn epoch_selects_a_chain_prefix() {
        let base = full(b"m1", b"c1");
        let d1 = encode_delta(
            &[
                (SectionId::Meta, b"m1".to_vec()),
                (SectionId::Corpus, b"c2".to_vec()),
            ],
            &base,
            5,
        )
        .unwrap()
        .bytes;
        let d2 = encode_delta(
            &[
                (SectionId::Meta, b"m3".to_vec()),
                (SectionId::Corpus, b"c2".to_vec()),
            ],
            &d1,
            9,
        )
        .unwrap()
        .bytes;
        let chain = [base.clone(), d1, d2];
        assert_eq!(materialize(&chain, 4).unwrap().bytes, base);
        assert_eq!(materialize(&chain, 5).unwrap().bytes, full(b"m1", b"c2"));
        assert_eq!(materialize(&chain, u64::MAX).unwrap().bytes, full(b"m3", b"c2"));
    }

    #[test]
    fn swapped_base_is_a_classified_base_mismatch() {
        let base = full(b"m1", b"c1");
        let other = full(b"mX", b"cX");
        let delta = encode_delta(
            &[
                (SectionId::Meta, b"m1".to_vec()),
                (SectionId::Corpus, b"c2".to_vec()),
            ],
            &base,
            5,
        )
        .unwrap()
        .bytes;
        let err = materialize(&[other, delta], u64::MAX).unwrap_err();
        assert_eq!(err.label(), "base-mismatch");
    }

    #[test]
    fn meta_round_trips() {
        let meta = DeltaMeta {
            base_id: 0xdead_beef_cafe_f00d,
            epoch: 42,
            reused: vec![(1, 7), (4, u64::MAX)],
        };
        let body = encode_delta_meta(&meta);
        let snap = Snapshot::parse(assemble(&[(SectionId::DeltaMeta, body)])).unwrap();
        assert_eq!(decode_delta_meta(&snap).unwrap(), Some(meta));

        let plain = Snapshot::parse(full(b"m", b"c")).unwrap();
        assert_eq!(decode_delta_meta(&plain).unwrap(), None);
    }
}
