//! Strict DER parsing.
//!
//! [`DerReader`] walks a byte slice, enforcing DER's canonical-form rules:
//! definite minimal lengths only, minimal INTEGERs, boolean content octets
//! restricted to `0x00`/`0xFF`.

use crate::oid::Oid;
use crate::tag::Tag;
use crate::time::Time;
use crate::writer::is_printable_char;
use crate::Asn1Error;

/// A cursor over DER-encoded bytes.
#[derive(Debug, Clone)]
pub struct DerReader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> DerReader<'a> {
    /// Start reading at the beginning of `input`.
    pub fn new(input: &'a [u8]) -> Self {
        DerReader { input, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// True when all input has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.input.len()
    }

    /// Assert that all input was consumed.
    pub fn finish(&self) -> Result<(), Asn1Error> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(Asn1Error::TrailingData)
        }
    }

    /// Peek at the tag of the next TLV without consuming anything.
    pub fn peek_tag(&self) -> Result<Tag, Asn1Error> {
        let b = *self.input.get(self.pos).ok_or(Asn1Error::Truncated)?;
        Tag::from_byte(b).ok_or(Asn1Error::UnsupportedTag)
    }

    /// Read the next TLV, returning its tag and content octets.
    pub fn read_tlv(&mut self) -> Result<(Tag, &'a [u8]), Asn1Error> {
        let tag = self.peek_tag()?;
        let mut pos = self.pos + 1;
        let first = *self.input.get(pos).ok_or(Asn1Error::Truncated)?;
        pos += 1;
        let len = if first < 0x80 {
            first as usize
        } else if first == 0x80 {
            return Err(Asn1Error::BadLength); // indefinite form
        } else {
            let nbytes = (first & 0x7f) as usize;
            if nbytes > 8 {
                return Err(Asn1Error::BadLength);
            }
            let bytes = self
                .input
                .get(pos..pos + nbytes)
                .ok_or(Asn1Error::Truncated)?;
            pos += nbytes;
            if bytes[0] == 0 {
                return Err(Asn1Error::BadLength); // non-minimal
            }
            let mut len = 0usize;
            for &b in bytes {
                len = len
                    .checked_shl(8)
                    .and_then(|l| l.checked_add(b as usize))
                    .ok_or(Asn1Error::BadLength)?;
            }
            if len < 0x80 {
                return Err(Asn1Error::BadLength); // should have used short form
            }
            len
        };
        let content = self.input.get(pos..pos + len).ok_or(Asn1Error::Truncated)?;
        self.pos = pos + len;
        Ok((tag, content))
    }

    /// Read the next TLV including its header, returning the full encoding.
    ///
    /// Useful for capturing sub-structures verbatim (e.g. the
    /// `tbsCertificate` bytes that a signature covers).
    pub fn read_raw_tlv(&mut self) -> Result<&'a [u8], Asn1Error> {
        let start = self.pos;
        self.read_tlv()?;
        Ok(&self.input[start..self.pos])
    }

    /// Read a TLV and require a specific tag.
    pub fn expect(&mut self, expected: Tag) -> Result<&'a [u8], Asn1Error> {
        let actual = self.peek_tag()?;
        if actual != expected {
            return Err(Asn1Error::UnexpectedTag { expected, actual });
        }
        Ok(self.read_tlv()?.1)
    }

    /// Read a SEQUENCE and return a reader over its content.
    pub fn read_sequence(&mut self) -> Result<DerReader<'a>, Asn1Error> {
        Ok(DerReader::new(self.expect(Tag::SEQUENCE)?))
    }

    /// Read a SET and return a reader over its content.
    pub fn read_set(&mut self) -> Result<DerReader<'a>, Asn1Error> {
        Ok(DerReader::new(self.expect(Tag::SET)?))
    }

    /// Read an EXPLICIT `[n]` wrapper and return a reader over its content.
    pub fn read_context(&mut self, number: u8) -> Result<DerReader<'a>, Asn1Error> {
        Ok(DerReader::new(
            self.expect(Tag::context_constructed(number))?,
        ))
    }

    /// If the next TLV is `[n]` EXPLICIT, consume it and return its reader.
    pub fn read_optional_context(
        &mut self,
        number: u8,
    ) -> Result<Option<DerReader<'a>>, Asn1Error> {
        if self.is_at_end() {
            return Ok(None);
        }
        if self.peek_tag()? == Tag::context_constructed(number) {
            Ok(Some(self.read_context(number)?))
        } else {
            Ok(None)
        }
    }

    /// Read a BOOLEAN.
    pub fn read_boolean(&mut self) -> Result<bool, Asn1Error> {
        let content = self.expect(Tag::BOOLEAN)?;
        match content {
            [0x00] => Ok(false),
            [0xff] => Ok(true),
            _ => Err(Asn1Error::BadValue("non-canonical BOOLEAN")),
        }
    }

    /// Read an INTEGER as unsigned big-endian magnitude bytes.
    ///
    /// Negative INTEGERs are rejected — X.509 uses only non-negative values
    /// (serials, versions, RSA parameters).
    pub fn read_integer_bytes(&mut self) -> Result<Vec<u8>, Asn1Error> {
        let content = self.expect(Tag::INTEGER)?;
        if content.is_empty() {
            return Err(Asn1Error::BadValue("empty INTEGER"));
        }
        if content.len() > 1 && content[0] == 0 && content[1] & 0x80 == 0 {
            return Err(Asn1Error::BadValue("non-minimal INTEGER"));
        }
        if content[0] & 0x80 != 0 {
            return Err(Asn1Error::BadValue("negative INTEGER"));
        }
        let start = if content[0] == 0 && content.len() > 1 { 1 } else { 0 };
        Ok(content[start..].to_vec())
    }

    /// Read an INTEGER that must fit in a `u64`.
    pub fn read_integer_u64(&mut self) -> Result<u64, Asn1Error> {
        let bytes = self.read_integer_bytes()?;
        if bytes.len() > 8 {
            return Err(Asn1Error::BadValue("INTEGER too large for u64"));
        }
        let mut v = 0u64;
        for b in bytes {
            v = (v << 8) | b as u64;
        }
        Ok(v)
    }

    /// Read an OBJECT IDENTIFIER.
    pub fn read_oid(&mut self) -> Result<Oid, Asn1Error> {
        Oid::from_der_content(self.expect(Tag::OID)?)
    }

    /// Read NULL.
    pub fn read_null(&mut self) -> Result<(), Asn1Error> {
        let content = self.expect(Tag::NULL)?;
        if content.is_empty() {
            Ok(())
        } else {
            Err(Asn1Error::BadValue("NULL with content"))
        }
    }

    /// Read an OCTET STRING.
    pub fn read_octet_string(&mut self) -> Result<&'a [u8], Asn1Error> {
        self.expect(Tag::OCTET_STRING)
    }

    /// Read a BIT STRING, returning (unused-bit count, payload bytes).
    pub fn read_bit_string(&mut self) -> Result<(u8, &'a [u8]), Asn1Error> {
        let content = self.expect(Tag::BIT_STRING)?;
        let (&unused, rest) = content
            .split_first()
            .ok_or(Asn1Error::BadValue("empty BIT STRING"))?;
        if unused > 7 || (rest.is_empty() && unused != 0) {
            return Err(Asn1Error::BadValue("invalid BIT STRING unused count"));
        }
        Ok((unused, rest))
    }

    /// Read a BIT STRING that must have zero unused bits (signatures, SPKI).
    pub fn read_bit_string_bytes(&mut self) -> Result<&'a [u8], Asn1Error> {
        let (unused, bytes) = self.read_bit_string()?;
        if unused != 0 {
            return Err(Asn1Error::BadValue("BIT STRING with unused bits"));
        }
        Ok(bytes)
    }

    /// Read any of UTF8String / PrintableString / IA5String as a `&str`.
    pub fn read_string(&mut self) -> Result<String, Asn1Error> {
        let tag = self.peek_tag()?;
        let content = match tag {
            Tag::UTF8_STRING => self.expect(Tag::UTF8_STRING)?,
            Tag::PRINTABLE_STRING => {
                let c = self.expect(Tag::PRINTABLE_STRING)?;
                if !c.iter().all(|&b| is_printable_char(b)) {
                    return Err(Asn1Error::BadValue("invalid PrintableString character"));
                }
                c
            }
            Tag::IA5_STRING => {
                let c = self.expect(Tag::IA5_STRING)?;
                if !c.is_ascii() {
                    return Err(Asn1Error::BadValue("non-ASCII IA5String"));
                }
                c
            }
            actual => {
                return Err(Asn1Error::UnexpectedTag {
                    expected: Tag::UTF8_STRING,
                    actual,
                })
            }
        };
        String::from_utf8(content.to_vec())
            .map_err(|_| Asn1Error::BadValue("invalid UTF-8 in string"))
    }

    /// Read a UTCTime or GeneralizedTime.
    pub fn read_time(&mut self) -> Result<Time, Asn1Error> {
        let tag = self.peek_tag()?;
        match tag {
            Tag::UTC_TIME => {
                let content = self.expect(Tag::UTC_TIME)?;
                Time::parse_utc_time(content)
            }
            Tag::GENERALIZED_TIME => {
                let content = self.expect(Tag::GENERALIZED_TIME)?;
                Time::parse_generalized_time(content)
            }
            actual => Err(Asn1Error::UnexpectedTag {
                expected: Tag::UTC_TIME,
                actual,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::DerWriter;

    #[test]
    fn rejects_indefinite_length() {
        // SEQUENCE with indefinite length: 30 80 ... 00 00
        let bytes = [0x30, 0x80, 0x02, 0x01, 0x01, 0x00, 0x00];
        assert_eq!(
            DerReader::new(&bytes).read_tlv().unwrap_err(),
            Asn1Error::BadLength
        );
    }

    #[test]
    fn rejects_non_minimal_length() {
        // 0x81 0x05 could have been 0x05.
        let bytes = [0x04, 0x81, 0x05, 1, 2, 3, 4, 5];
        assert_eq!(
            DerReader::new(&bytes).read_tlv().unwrap_err(),
            Asn1Error::BadLength
        );
        // Leading zero in long-form length.
        let bytes = [0x04, 0x82, 0x00, 0x81].iter().copied().chain([0u8; 0x81]).collect::<Vec<_>>();
        assert_eq!(
            DerReader::new(&bytes).read_tlv().unwrap_err(),
            Asn1Error::BadLength
        );
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let mut w = DerWriter::new();
        w.sequence(|w| {
            w.integer_u64(1);
            w.utf8_string("payload");
        });
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let r = DerReader::new(&bytes[..cut]).read_tlv();
            assert!(r.is_err(), "cut at {cut} should fail");
        }
        // Full input parses.
        assert!(DerReader::new(&bytes).read_tlv().is_ok());
    }

    #[test]
    fn rejects_noncanonical_boolean() {
        let bytes = [0x01, 0x01, 0x2a];
        assert_eq!(
            DerReader::new(&bytes).read_boolean().unwrap_err(),
            Asn1Error::BadValue("non-canonical BOOLEAN")
        );
    }

    #[test]
    fn rejects_non_minimal_integer() {
        let bytes = [0x02, 0x02, 0x00, 0x01];
        assert!(DerReader::new(&bytes).read_integer_bytes().is_err());
    }

    #[test]
    fn rejects_negative_integer() {
        let bytes = [0x02, 0x01, 0x80];
        assert_eq!(
            DerReader::new(&bytes).read_integer_bytes().unwrap_err(),
            Asn1Error::BadValue("negative INTEGER")
        );
    }

    #[test]
    fn integer_with_required_leading_zero() {
        let mut w = DerWriter::new();
        w.integer_u64(0x80);
        let bytes = w.into_bytes();
        assert_eq!(
            DerReader::new(&bytes).read_integer_bytes().unwrap(),
            vec![0x80]
        );
    }

    #[test]
    fn integer_u64_limits() {
        let mut w = DerWriter::new();
        w.integer_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert_eq!(DerReader::new(&bytes).read_integer_u64().unwrap(), u64::MAX);

        // 9 magnitude bytes overflows u64.
        let mut w = DerWriter::new();
        w.integer_bytes(&[0x01, 0, 0, 0, 0, 0, 0, 0, 0]);
        let bytes = w.into_bytes();
        assert!(DerReader::new(&bytes).read_integer_u64().is_err());
    }

    #[test]
    fn bit_string_unused_bits() {
        let bytes = [0x03, 0x02, 0x04, 0xf0];
        let (unused, payload) = DerReader::new(&bytes).read_bit_string().unwrap();
        assert_eq!((unused, payload), (4, &[0xf0u8][..]));

        // Unused > 7 rejected.
        let bytes = [0x03, 0x02, 0x08, 0xf0];
        assert!(DerReader::new(&bytes).read_bit_string().is_err());
        // Empty with nonzero unused rejected.
        let bytes = [0x03, 0x01, 0x01];
        assert!(DerReader::new(&bytes).read_bit_string().is_err());
    }

    #[test]
    fn string_type_validation() {
        // PrintableString containing '@' is invalid.
        let bytes = [0x13, 0x01, b'@'];
        assert!(DerReader::new(&bytes).read_string().is_err());
        // IA5 with high bit set is invalid.
        let bytes = [0x16, 0x01, 0xc3];
        assert!(DerReader::new(&bytes).read_string().is_err());
        // UTF8 must be valid UTF-8.
        let bytes = [0x0c, 0x01, 0xc3];
        assert!(DerReader::new(&bytes).read_string().is_err());
        let bytes = [0x0c, 0x02, 0xc3, 0xa9];
        assert_eq!(DerReader::new(&bytes).read_string().unwrap(), "é");
    }

    #[test]
    fn optional_context_detection() {
        let mut w = DerWriter::new();
        w.context(2, |w| w.integer_u64(9));
        w.integer_u64(1);
        let bytes = w.into_bytes();
        let mut r = DerReader::new(&bytes);
        assert!(r.read_optional_context(0).unwrap().is_none());
        let mut ctx = r.read_optional_context(2).unwrap().unwrap();
        assert_eq!(ctx.read_integer_u64().unwrap(), 9);
        assert!(r.read_optional_context(2).unwrap().is_none());
        assert_eq!(r.read_integer_u64().unwrap(), 1);
        assert!(r.read_optional_context(2).unwrap().is_none()); // at end
    }

    #[test]
    fn raw_tlv_captures_header() {
        let mut w = DerWriter::new();
        w.sequence(|w| w.integer_u64(5));
        let bytes = w.into_bytes();
        let mut r = DerReader::new(&bytes);
        let raw = r.read_raw_tlv().unwrap();
        assert_eq!(raw, &bytes[..]);
    }

    #[test]
    fn trailing_data_detected() {
        let bytes = [0x02, 0x01, 0x01, 0xff];
        let mut r = DerReader::new(&bytes);
        r.read_integer_bytes().unwrap();
        assert_eq!(r.finish().unwrap_err(), Asn1Error::TrailingData);
    }

    #[test]
    fn unsupported_high_tag() {
        let bytes = [0x1f, 0x81, 0x01, 0x00];
        assert_eq!(
            DerReader::new(&bytes).read_tlv().unwrap_err(),
            Asn1Error::UnsupportedTag
        );
    }
}
