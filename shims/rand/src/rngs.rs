//! Standard RNG: ChaCha12 with the rand 0.8 block-buffer word order.

use crate::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// rand 0.8's `BlockRng` wrapper generates four ChaCha blocks per refill.
const BUFFER_WORDS: usize = BLOCK_WORDS * 4;
const ROUNDS: usize = 12;

/// The standard deterministic RNG (ChaCha12, seeded as in rand 0.8).
#[derive(Clone, Debug)]
pub struct StdRng {
    /// ChaCha key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14, little-endian halves).
    counter: u64,
    /// Buffered output words from the last refill.
    buffer: [u32; BUFFER_WORDS],
    /// Next unread index into `buffer`; `BUFFER_WORDS` forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, out: &mut [u32]) {
    // "expand 32-byte k"
    let mut state: [u32; BLOCK_WORDS] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let input = state;
    for _ in 0..ROUNDS / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(input.iter())) {
        *o = s.wrapping_add(*i);
    }
}

impl StdRng {
    fn refill(&mut self) {
        for block in 0..BUFFER_WORDS / BLOCK_WORDS {
            let slice = &mut self.buffer[block * BLOCK_WORDS..(block + 1) * BLOCK_WORDS];
            chacha_block(&self.key, self.counter, slice);
            self.counter = self.counter.wrapping_add(1);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, bytes) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        }
        StdRng {
            key,
            counter: 0,
            buffer: [0; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.refill();
            self.index = 0;
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        // rand_core BlockRng::next_u64 index-alignment behaviour.
        let len = BUFFER_WORDS;
        let read_u64 = |buf: &[u32; BUFFER_WORDS], i: usize| {
            (buf[i] as u64) | ((buf[i + 1] as u64) << 32)
        };
        if self.index < len - 1 {
            let value = read_u64(&self.buffer, self.index);
            self.index += 2;
            value
        } else if self.index == len - 1 {
            let lo = self.buffer[len - 1] as u64;
            self.refill();
            let hi = self.buffer[0] as u64;
            self.index = 1;
            lo | (hi << 32)
        } else {
            self.refill();
            self.index = 2;
            read_u64(&self.buffer, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439-style ChaCha20 test vector with an all-zero key/nonce; this
    /// validates the quarter-round and state layout (ChaCha12 only changes
    /// the round count).
    #[test]
    fn chacha_core_matches_reference_vector() {
        let mut out = [0u32; BLOCK_WORDS];
        // Reference keystream words for ChaCha20 block 0, zero key, zero
        // nonce: 76 b8 e0 ad a0 f1 3d 90 ... (first four LE words below).
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
        ];
        let input = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for ((o, s), i) in out.iter_mut().zip(state.iter()).zip(input.iter()) {
            *o = s.wrapping_add(*i);
        }
        assert_eq!(out[0], u32::from_le_bytes([0x76, 0xb8, 0xe0, 0xad]));
        assert_eq!(out[1], u32::from_le_bytes([0xa0, 0xf1, 0x3d, 0x90]));
    }

    #[test]
    fn u64_spans_refill_boundary() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        // Leave `a` one word before the refill boundary, then ask for a u64.
        for _ in 0..BUFFER_WORDS - 1 {
            a.next_u32();
        }
        let spanning = a.next_u64();
        // `b` reads the same words individually.
        let mut last = 0;
        for _ in 0..BUFFER_WORDS {
            last = b.next_u32();
        }
        let first_of_next = b.next_u32();
        assert_eq!(spanning, (last as u64) | ((first_of_next as u64) << 32));
    }
}
