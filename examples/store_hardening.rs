//! Store hardening: audit a device, then apply the paper's §8
//! recommendations — trim dead roots and scope trust Mozilla-style.
//!
//! ```text
//! cargo run --release --example store_hardening
//! ```

use tangled_mass::analysis::trimming::{self, Weighting};
use tangled_mass::analysis::Study;
use tangled_mass::pki::audit::audit;
use tangled_mass::pki::stores::{global_factory, ReferenceStore};
use tangled_mass::pki::trust::AnchorSource;

fn main() {
    eprintln!("generating study…");
    let study = Study::new(0.25, 0.5);
    let at = tangled_mass::notary::ecosystem::study_time();

    // --- 1. Audit a suspicious device --------------------------------------
    let baseline = ReferenceStore::Aosp44.cached().cloned_as("AOSP 4.4");
    let mut device = baseline.cloned_as("field device");
    {
        let mut f = global_factory().lock().expect("factory");
        device.add_cert(f.root("Deutsche Telekom Root CA 1 [d0dd9b0c]"), AnchorSource::Manufacturer);
        device.add_cert(f.root("CRAZY HOUSE"), AnchorSource::RootApp);
    }
    let report = audit(&baseline, &device, at);
    println!("{}", report.render());

    // --- 2. Trim dead weight (§5.3 / Perl et al.) ---------------------------
    for weighting in [Weighting::Certificates, Weighting::Sessions] {
        let plan = trimming::plan(&baseline, &study.validation, 1.0, weighting);
        println!(
            "trim plan ({weighting:?}, keep 100% of coverage): disable {} of {} anchors \
             ({:.0}% surface reduction), coverage retained {:.1}%",
            plan.disable.len(),
            baseline.len(),
            plan.surface_reduction() * 100.0,
            plan.retained_fraction() * 100.0
        );
    }
    let aggressive = trimming::plan(&baseline, &study.validation, 0.99, Weighting::Sessions);
    println!(
        "aggressive plan (99% of session volume): keep only {} anchors\n",
        aggressive.keep.len()
    );

    // --- 3. Scope trust by observed use (§8) --------------------------------
    let (scoped, scope_report) = trimming::scope_by_observed_use(&baseline, &study.validation);
    println!(
        "scoping report for {}:\n  all-purpose anchors: {} → {}\n  \
         TLS-scoped: {}\n  fully untrusted (dead): {}\n  \
         TLS coverage: {} → {} (unchanged: scoping by use is free)",
        scoped.name(),
        scope_report.all_purpose_before,
        scope_report.all_purpose_after,
        scope_report.tls_scoped,
        scope_report.untrusted,
        scope_report.tls_coverage_before,
        scope_report.tls_coverage_after,
    );
    println!(
        "\n\"We recommend enforcing an audited and more strict root store for \
         Android, per the approaches adopted by Mozilla and iOS.\" — §8"
    );
}
