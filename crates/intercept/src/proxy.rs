//! The intercepting middlebox.
//!
//! [`MitmProxy`] owns a root CA and an issuing (intermediate) CA and, for
//! intercepted targets, mints a fresh leaf for the requested domain on the
//! fly — "intercepting and re-generating both root and intermediate
//! certificates on-the-fly for specific domains" (§7).

use crate::origin::OriginServers;
use crate::policy::{ProxyAction, ProxyPolicy, Target};
use std::collections::HashMap;
use std::sync::Arc;
use tangled_asn1::Time;
use tangled_crypto::rsa::RsaKeyPair;
use tangled_crypto::{SplitMix64, Uint};
use tangled_x509::{Certificate, CertificateBuilder, DistinguishedName};

/// The proxy's name in certificates it mints (the paper's operator signs
/// as the marketing company).
pub const PROXY_CA_NAME: &str = "Reality Mine Research Proxy CA";

/// Host name of the proxy endpoint observed by Netalyzr.
pub const PROXY_HOST: &str = "v-us-49.analyzeme.me.uk";

/// An HTTPS-intercepting proxy.
pub struct MitmProxy {
    policy: ProxyPolicy,
    root: Arc<Certificate>,
    issuing: Arc<Certificate>,
    issuing_key: RsaKeyPair,
    leaf_key: RsaKeyPair,
    minted: HashMap<Target, Vec<Arc<Certificate>>>,
    serial: u64,
}

impl MitmProxy {
    /// Stand up a proxy with a fresh CA hierarchy (deterministic in
    /// `seed`) and the given policy.
    pub fn new(policy: ProxyPolicy, seed: u64) -> MitmProxy {
        let mut rng = SplitMix64::new(seed);
        let root_key = RsaKeyPair::generate(512, &mut rng).expect("keygen");
        let issuing_key = RsaKeyPair::generate(512, &mut rng).expect("keygen");
        let leaf_key = RsaKeyPair::generate(512, &mut rng).expect("keygen");

        let nb = Time::date(2013, 1, 1).expect("valid");
        let na = Time::date(2023, 1, 1).expect("valid");
        let root_dn = DistinguishedName::builder()
            .common_name(PROXY_CA_NAME)
            .organization("RealityMine Ltd")
            .country("GB")
            .build();
        let root = Arc::new(
            CertificateBuilder::new(root_dn.clone(), root_dn.clone(), nb, na)
                .serial(Uint::one())
                .ca(None)
                .key_ids(root_key.public_key(), root_key.public_key())
                .sign(root_key.public_key(), &root_key)
                .expect("root issuance"),
        );
        let issuing_dn = DistinguishedName::builder()
            .common_name("Reality Mine Issuing CA 01")
            .organization("RealityMine Ltd")
            .country("GB")
            .build();
        let issuing = Arc::new(
            CertificateBuilder::new(root_dn, issuing_dn, nb, na)
                .serial(Uint::from_u64(2))
                .ca(Some(0))
                .key_ids(issuing_key.public_key(), root_key.public_key())
                .sign(issuing_key.public_key(), &root_key)
                .expect("issuing CA issuance"),
        );
        MitmProxy {
            policy,
            root,
            issuing,
            issuing_key,
            leaf_key,
            minted: HashMap::new(),
            serial: 90_000,
        }
    }

    /// The Reality Mine proxy as the paper observed it.
    pub fn reality_mine() -> MitmProxy {
        MitmProxy::new(ProxyPolicy::reality_mine(), 0x5EA1)
    }

    /// The proxy's own root certificate (never installed on the victim
    /// device in the §7 case — which is exactly why Netalyzr could see the
    /// interception).
    pub fn root_cert(&self) -> &Arc<Certificate> {
        &self.root
    }

    /// The policy in force.
    pub fn policy(&self) -> &ProxyPolicy {
        &self.policy
    }

    /// Handle a connection: return the chain the client sees.
    ///
    /// Whitelisted / non-HTTPS targets get the origin chain verbatim;
    /// intercepted targets get a proxy-minted chain
    /// `leaf(domain) ← issuing CA ← (proxy root, not sent)`.
    pub fn serve(&mut self, target: &Target, origin: &OriginServers) -> Vec<Arc<Certificate>> {
        match self.policy.action(target) {
            ProxyAction::PassThrough => origin
                .chain(target)
                .map(|c| c.to_vec())
                .unwrap_or_default(),
            ProxyAction::Intercept => {
                if let Some(chain) = self.minted.get(target) {
                    return chain.clone();
                }
                self.serial += 1;
                let leaf = Arc::new(
                    CertificateBuilder::new(
                        self.issuing.subject.clone(),
                        DistinguishedName::common_name(&target.domain),
                        Time::date(2013, 6, 1).expect("valid"),
                        Time::date(2016, 6, 1).expect("valid"),
                    )
                    .serial(Uint::from_u64(self.serial))
                    .tls_server(vec![target.domain.clone()])
                    .key_ids(self.leaf_key.public_key(), self.issuing_key.public_key())
                    .sign(self.leaf_key.public_key(), &self.issuing_key)
                    .expect("on-the-fly leaf"),
                );
                let chain = vec![leaf, Arc::clone(&self.issuing)];
                self.minted.insert(target.clone(), chain.clone());
                chain
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intercepted_chain_is_proxy_signed() {
        let origin = OriginServers::for_table6();
        let mut proxy = MitmProxy::reality_mine();
        let t = Target::parse("www.chase.com:443").unwrap();
        let chain = proxy.serve(&t, &origin);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].subject.cn(), Some("www.chase.com"));
        // Leaf verifies under the proxy's issuing CA, which verifies under
        // the proxy root.
        chain[0].verify_issued_by(&chain[1]).unwrap();
        chain[1].verify_issued_by(proxy.root_cert()).unwrap();
        // And it is NOT the origin chain.
        assert_ne!(chain[0].to_der(), origin.chain(&t).unwrap()[0].to_der());
    }

    #[test]
    fn whitelisted_chain_is_untouched() {
        let origin = OriginServers::for_table6();
        let mut proxy = MitmProxy::reality_mine();
        let t = Target::parse("www.facebook.com:443").unwrap();
        let chain = proxy.serve(&t, &origin);
        assert_eq!(chain[0].to_der(), origin.chain(&t).unwrap()[0].to_der());
    }

    #[test]
    fn minted_leaves_are_cached_per_target() {
        let origin = OriginServers::for_table6();
        let mut proxy = MitmProxy::reality_mine();
        let t = Target::parse("gmail.com:443").unwrap();
        let a = proxy.serve(&t, &origin);
        let b = proxy.serve(&t, &origin);
        assert_eq!(a[0].to_der(), b[0].to_der());
        // Different targets get different leaves.
        let c = proxy.serve(&Target::parse("www.yahoo.com:443").unwrap(), &origin);
        assert_ne!(a[0].to_der(), c[0].to_der());
    }

    #[test]
    fn proxy_is_deterministic_in_seed() {
        let a = MitmProxy::new(ProxyPolicy::reality_mine(), 7);
        let b = MitmProxy::new(ProxyPolicy::reality_mine(), 7);
        assert_eq!(a.root_cert().to_der(), b.root_cert().to_der());
        let c = MitmProxy::new(ProxyPolicy::reality_mine(), 8);
        assert_ne!(a.root_cert().to_der(), c.root_cert().to_der());
    }
}
