//! The synthetic server-certificate ecosystem.
//!
//! [`issuance_plan`] assigns every root CA of the workspace a leaf-issuance
//! volume calibrated to the paper's validation structure (see crate docs);
//! [`Ecosystem::generate`] then mints real, verifiable chains for the whole
//! plan plus a *wild* population no store validates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tangled_asn1::Time;
use tangled_pki::extras::catalogue;
use tangled_pki::stores::{
    aosp_only_name, global_factory, ios7_only_name, mint_extra, shared_exact_name,
    shared_reissued_name,
};
use tangled_crypto::rsa::RsaKeyPair;
use tangled_crypto::Uint;
use tangled_exec::ExecPool;
use tangled_x509::{Certificate, CertificateBuilder, DistinguishedName};

/// The study instant every validation in the workspace uses
/// (mid-window of the Nov 2013 – Apr 2014 collection).
pub fn study_time() -> Time {
    Time::date(2014, 2, 1).expect("valid date")
}

/// One CA's issuance assignment.
#[derive(Debug, Clone)]
pub struct IssuanceEntry {
    /// Factory key name of the issuing root.
    pub key_name: String,
    /// Whether the root is a Figure 2 extra (minted with the hint OU).
    pub is_extra: bool,
    /// Number of leaves to issue (full scale).
    pub leaves: u32,
    /// Issue through an intermediate CA instead of directly.
    pub via_intermediate: bool,
}

/// The calibrated issuance plan (full scale ≈ 8,500 validated leaves).
///
/// Calibration targets, all relative (see EXPERIMENTS.md for the mapping):
/// * Table 3 ordering: Mozilla < AOSP 4.1 = 4.2 < 4.3 < 4.4 < iOS 7, with
///   a spread below 2 % — the web's traffic concentrates on the shared
///   core every store carries;
/// * Table 4 dead-root fractions: ≈22 % of Mozilla and AOSP roots, ≈41 %
///   of iOS 7 roots, and ≈72 % of the neither-AOSP-nor-Mozilla extras
///   validate nothing;
/// * Figure 3 shape: Zipf-heavy — a handful of roots validates most
///   certificates.
pub fn issuance_plan() -> Vec<IssuanceEntry> {
    let mut plan = Vec::new();

    // Zipf core: shared roots 1..=100 issue; 101..=117 are dead weight.
    let h100: f64 = (1..=100).map(|i| 1.0 / i as f64).sum();
    for i in 1..=100usize {
        plan.push(IssuanceEntry {
            key_name: shared_exact_name(i),
            is_extra: false,
            leaves: ((8_000.0 / h100) / i as f64).round().max(1.0) as u32,
            via_intermediate: i % 10 == 0,
        });
    }
    // Re-issued shared roots: 1..=9 issue modestly; 10..=13 are dead.
    for i in 1..=9usize {
        plan.push(IssuanceEntry {
            key_name: shared_reissued_name(i),
            is_extra: false,
            leaves: 25,
            via_intermediate: false,
        });
    }
    // AOSP-only roots: a few government/regional CAs with small volumes.
    // Indices 19 and 20 join only in AOSP 4.3/4.4 — they create the
    // Table 3 growth across releases.
    for i in 2..=7usize {
        plan.push(IssuanceEntry {
            key_name: aosp_only_name(i),
            is_extra: false,
            leaves: 10,
            via_intermediate: false,
        });
    }
    plan.push(IssuanceEntry {
        key_name: aosp_only_name(19),
        is_extra: false,
        leaves: 5,
        via_intermediate: false,
    });
    plan.push(IssuanceEntry {
        key_name: aosp_only_name(20),
        is_extra: false,
        leaves: 3,
        via_intermediate: false,
    });

    // Figure 2 extras: store members issue small volumes; the pinned
    // "offline" certificates issue nothing.
    let cat = catalogue();
    let mut mozilla_issuers = 0;
    let mut ios7_issuers = 0;
    let mut android_issuers = 0;
    for extra in &cat {
        let leaves = if extra.in_mozilla && mozilla_issuers < 11 {
            mozilla_issuers += 1;
            3
        } else if !extra.in_mozilla && extra.in_ios7 && ios7_issuers < 10 {
            ios7_issuers += 1;
            6
        } else if !extra.in_mozilla && !extra.in_ios7 && extra.notary_seen && android_issuers < 12
        {
            android_issuers += 1;
            2
        } else {
            continue;
        };
        plan.push(IssuanceEntry {
            key_name: extra.key_name(),
            is_extra: true,
            leaves,
            via_intermediate: false,
        });
    }

    // A few iOS-only partner roots issue; the rest are dead weight.
    for i in 1..=8usize {
        plan.push(IssuanceEntry {
            key_name: ios7_only_name(i),
            is_extra: false,
            leaves: 5,
            via_intermediate: false,
        });
    }
    plan
}

/// Number of wild (store-invisible) leaves at full scale: self-signed
/// servers and private-CA deployments. Sized so store coverage of the
/// Notary lands near the paper's ~74 %.
pub const WILD_LEAVES: u32 = 2_900;

/// Number of distinct private CAs behind the wild chains.
pub const WILD_PRIVATE_CAS: usize = 30;

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct EcosystemSpec {
    /// Seed for the deterministic draws (domains, session volumes).
    pub seed: u64,
    /// Scale on issuance volumes (1.0 = full plan).
    pub scale: f64,
}

impl Default for EcosystemSpec {
    fn default() -> Self {
        EcosystemSpec {
            seed: 66_000_000,
            scale: 1.0,
        }
    }
}

impl EcosystemSpec {
    /// A reduced-scale spec for fast tests.
    pub fn scaled(scale: f64) -> EcosystemSpec {
        EcosystemSpec {
            seed: 66_000_000,
            scale,
        }
    }
}

/// The TLS-bearing service a certificate was observed on. The Notary
/// collects from "any port, not only HTTPS" (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Service {
    /// HTTPS (443, 8443).
    Https,
    /// SMTP submission / SMTPS (587, 465, 25+STARTTLS).
    Smtp,
    /// IMAPS / POP3S (993, 995).
    Imap,
    /// XMPP (5222/5269).
    Xmpp,
    /// Anything else TLS-wrapped.
    Other,
}

impl Service {
    /// All services in display order.
    pub const ALL: [Service; 5] = [
        Service::Https,
        Service::Smtp,
        Service::Imap,
        Service::Xmpp,
        Service::Other,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Service::Https => "HTTPS",
            Service::Smtp => "SMTP",
            Service::Imap => "IMAP/POP3",
            Service::Xmpp => "XMPP",
            Service::Other => "other",
        }
    }
}

/// One observed server certificate with its presented chain.
#[derive(Debug, Clone)]
pub struct NotaryCert {
    /// Presented chain, leaf first (root not included, as on the wire).
    pub chain: Vec<Arc<Certificate>>,
    /// Synthetic SSL session volume attributed to this certificate.
    pub sessions: u64,
    /// The service the certificate was observed on.
    pub service: Service,
}

impl NotaryCert {
    /// The leaf certificate.
    pub fn leaf(&self) -> &Arc<Certificate> {
        &self.chain[0]
    }
}

/// The generated ecosystem.
pub struct Ecosystem {
    /// All observed certificates.
    pub certs: Vec<NotaryCert>,
    /// Intermediate CA certificates (for the chain verifier pool).
    pub intermediates: Vec<Arc<Certificate>>,
    /// Every store-member root, deduplicated by identity — the universe
    /// the validation index anchors against.
    pub universe_roots: Vec<Arc<Certificate>>,
}

impl Ecosystem {
    /// Generate the ecosystem for a spec on the ambient [`ExecPool`].
    pub fn generate(spec: &EcosystemSpec) -> Ecosystem {
        Self::generate_with_pool(spec, &ExecPool::current())
    }

    /// Generate the ecosystem for a spec on an explicit pool.
    ///
    /// Generation is split into two phases so the output is bit-identical
    /// at any pool width. Phase A walks the plan *sequentially*, consuming
    /// the spec's RNG stream in exactly the order the original single-pass
    /// loop did (session and service draws are the only RNG uses) and
    /// resolving every issuer through the CA factory; it emits one
    /// [`LeafJob`] per certificate. Phase B — the RSA leaf-signing that
    /// dominates wall time — is pure per-job work with no RNG and no shared
    /// state, so [`ExecPool::par_map_indexed`] signs the jobs in parallel
    /// and reassembles them in index order.
    pub fn generate_with_pool(spec: &EcosystemSpec, pool: &ExecPool) -> Ecosystem {
        let span = tangled_obs::trace::span_start("notary.ecosystem", spec.seed, 0, &[]);
        let started = std::time::Instant::now();
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let plan = issuance_plan();
        let mut factory = global_factory().lock().expect("factory poisoned");

        // Pool of leaf keys: leaves do not need distinct keys, and key
        // generation is the only expensive step.
        let leaf_keys: Vec<Arc<RsaKeyPair>> = (0..8)
            .map(|i| factory.keypair(&format!("notary-leaf-pool-{i}")))
            .collect();

        let cat = catalogue();
        let mut jobs: Vec<LeafJob> = Vec::new();
        let mut intermediates = Vec::new();
        let mut serial = 10_000u64;

        // Phase A: sequential planning. Factory mutations and RNG draws
        // happen here, in the exact order of the original loop.
        for entry in &plan {
            let root = if entry.is_extra {
                let extra = cat
                    .iter()
                    .find(|e| e.key_name() == entry.key_name)
                    .expect("plan extras come from the catalogue");
                mint_extra(&mut factory, extra)
            } else {
                factory.root(&entry.key_name)
            };

            let (issuer_cert, issuer_key_name) = if entry.via_intermediate {
                let int_name = format!("{} Issuing CA", entry.key_name);
                let inter = factory
                    .intermediate(&entry.key_name, &int_name, Some(0))
                    .expect("intermediate issuance");
                intermediates.push(Arc::clone(&inter));
                (inter, format!("int:{int_name}"))
            } else {
                (Arc::clone(&root), entry.key_name.clone())
            };
            let issuer_kp = factory.keypair(&issuer_key_name);

            let n = scale_count(entry.leaves, spec.scale);
            for i in 0..n {
                serial += 1;
                // Every 7th leaf of high-volume CAs is expired at study
                // time (the Notary's 1.9M-total vs 1M-non-expired split);
                // small CAs keep all leaves valid so the calibrated
                // ordering of Table 3 stays deterministic.
                let expired = entry.leaves > 10 && i % 7 == 3;
                jobs.push(LeafJob {
                    kind: LeafKind::Issued {
                        issuer: Arc::clone(&issuer_cert),
                        issuer_kp: Arc::clone(&issuer_kp),
                        leaf_kp: Arc::clone(
                            &leaf_keys[(serial % leaf_keys.len() as u64) as usize],
                        ),
                        domain: format!("www.site-{serial}.example.org"),
                        serial,
                        expired,
                        presented_issuer: entry
                            .via_intermediate
                            .then(|| Arc::clone(&issuer_cert)),
                    },
                    sessions: draw_sessions(&mut rng),
                    service: draw_service(&mut rng),
                });
            }
        }

        // Wild population: self-signed servers and private-CA chains.
        let wild = scale_count(WILD_LEAVES, spec.scale);
        for w in 0..wild {
            serial += 1;
            let kind = if w % 2 == 0 {
                // Self-signed server certificate.
                LeafKind::SelfSigned {
                    kp: Arc::clone(&leaf_keys[(w % leaf_keys.len() as u32) as usize]),
                    domain: format!("self-signed-{serial}.internal"),
                    serial,
                }
            } else {
                // Private corporate CA the public stores do not carry.
                let ca_name = format!("Private Corp CA {:02}", w as usize % WILD_PRIVATE_CAS);
                let ca = factory.root(&ca_name);
                let ca_kp = factory.keypair(&ca_name);
                LeafKind::Issued {
                    issuer: ca,
                    issuer_kp: ca_kp,
                    leaf_kp: Arc::clone(&leaf_keys[(w % leaf_keys.len() as u32) as usize]),
                    domain: format!("intranet-{serial}.corp.example"),
                    serial,
                    expired: false,
                    presented_issuer: None,
                }
            };
            jobs.push(LeafJob {
                kind,
                sessions: draw_sessions(&mut rng),
                service: draw_service(&mut rng),
            });
        }
        drop(factory);

        // Phase A is over: the job list is fixed, so its size is a pure
        // function of the spec and safe to trace.
        tangled_obs::trace::point(
            "notary.ecosystem",
            span,
            &[("jobs", serde_json::Value::from(jobs.len() as u64))],
        );

        // Phase B: parallel signing. Each job is self-contained (issuer
        // cert, keys, domain, serial all resolved in phase A), so signing
        // order cannot affect the bytes produced; results come back in
        // job-index order.
        let leaves = pool.par_map_indexed(&jobs, |_, job| sign_job(&job.kind));
        let certs: Vec<NotaryCert> = jobs
            .iter()
            .zip(leaves)
            .map(|(job, leaf)| {
                let mut chain = vec![leaf];
                if let LeafKind::Issued {
                    presented_issuer: Some(inter),
                    ..
                } = &job.kind
                {
                    chain.push(Arc::clone(inter));
                }
                NotaryCert {
                    chain,
                    sessions: job.sessions,
                    service: job.service,
                }
            })
            .collect();

        // Universe roots: every reference-store member, deduplicated by
        // identity (the re-issued pairs share one identity).
        let mut seen = std::collections::HashSet::new();
        let mut universe_roots = Vec::new();
        for rs in tangled_pki::stores::ReferenceStore::ALL {
            for anchor in rs.cached().iter() {
                if seen.insert(anchor.identity()) {
                    universe_roots.push(Arc::clone(&anchor.cert));
                }
            }
        }
        // Plus the non-store extras observed on Android handsets.
        {
            let mut factory = global_factory().lock().expect("factory poisoned");
            for extra in &cat {
                let cert = mint_extra(&mut factory, extra);
                if seen.insert(cert.identity()) {
                    universe_roots.push(cert);
                }
            }
        }

        let eco = Ecosystem {
            certs,
            intermediates,
            universe_roots,
        };
        tangled_obs::registry::add("notary.ecosystem.runs", 1);
        tangled_obs::registry::observe(
            "notary.ecosystem.us",
            started.elapsed().as_micros() as u64,
        );
        tangled_obs::trace::span_end(
            "notary.ecosystem",
            span,
            &[
                ("certs", serde_json::Value::from(eco.certs.len() as u64)),
                (
                    "intermediates",
                    serde_json::Value::from(eco.intermediates.len() as u64),
                ),
                (
                    "universe_roots",
                    serde_json::Value::from(eco.universe_roots.len() as u64),
                ),
            ],
        );
        eco
    }

    /// Total unique certificates observed.
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// True when the ecosystem holds no certificates (never in practice).
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty()
    }

    /// Per-service certificate counts (the §4.2 "any port" breakdown).
    pub fn service_histogram(&self) -> Vec<(Service, usize)> {
        Service::ALL
            .into_iter()
            .map(|svc| {
                (
                    svc,
                    self.certs.iter().filter(|c| c.service == svc).count(),
                )
            })
            .collect()
    }

    /// Certificates still valid at the study time.
    pub fn non_expired(&self) -> usize {
        self.certs
            .iter()
            .filter(|c| c.leaf().is_valid_at(study_time()))
            .count()
    }
}

/// A fully-resolved certificate to mint: everything the signing phase
/// needs, with no RNG and no factory access left.
struct LeafJob {
    kind: LeafKind,
    sessions: u64,
    service: Service,
}

enum LeafKind {
    /// CA-issued leaf; `presented_issuer` is the intermediate to include
    /// in the presented chain (when issued via one).
    Issued {
        issuer: Arc<Certificate>,
        issuer_kp: Arc<RsaKeyPair>,
        leaf_kp: Arc<RsaKeyPair>,
        domain: String,
        serial: u64,
        expired: bool,
        presented_issuer: Option<Arc<Certificate>>,
    },
    /// Self-signed server certificate.
    SelfSigned {
        kp: Arc<RsaKeyPair>,
        domain: String,
        serial: u64,
    },
}

fn sign_job(kind: &LeafKind) -> Arc<Certificate> {
    match kind {
        LeafKind::Issued {
            issuer,
            issuer_kp,
            leaf_kp,
            domain,
            serial,
            expired,
            ..
        } => issue_leaf(issuer, issuer_kp, leaf_kp, domain, *serial, *expired),
        LeafKind::SelfSigned { kp, domain, serial } => Arc::new(
            CertificateBuilder::new(
                DistinguishedName::common_name(domain),
                DistinguishedName::common_name(domain),
                Time::date(2012, 1, 1).expect("valid"),
                Time::date(2016, 1, 1).expect("valid"),
            )
            .serial(Uint::from_u64(*serial))
            .tls_server(vec![domain.clone()])
            .sign(kp.public_key(), kp)
            .expect("self-signed issuance"),
        ),
    }
}

fn scale_count(full: u32, scale: f64) -> u32 {
    ((full as f64 * scale).round() as u32).max(1)
}

/// Service mix: HTTPS dominates, with real tails of mail and chat — the
/// paper's "any port" collection.
fn draw_service(rng: &mut StdRng) -> Service {
    let roll: f64 = rng.gen();
    if roll < 0.72 {
        Service::Https
    } else if roll < 0.84 {
        Service::Smtp
    } else if roll < 0.93 {
        Service::Imap
    } else if roll < 0.97 {
        Service::Xmpp
    } else {
        Service::Other
    }
}

fn draw_sessions(rng: &mut StdRng) -> u64 {
    // Heavy-tailed session volume per certificate.
    let u: f64 = rng.gen_range(0.000_01..1.0);
    (3.0 / u).round() as u64
}

fn issue_leaf(
    issuer: &Arc<Certificate>,
    issuer_kp: &RsaKeyPair,
    leaf_kp: &RsaKeyPair,
    domain: &str,
    serial: u64,
    expired: bool,
) -> Arc<Certificate> {
    let not_after = if expired {
        Time::date(2013, 6, 30).expect("valid")
    } else {
        Time::date(2015, 6, 30).expect("valid")
    };
    Arc::new(
        CertificateBuilder::new(
            issuer.subject.clone(),
            DistinguishedName::common_name(domain),
            Time::date(2012, 1, 1).expect("valid"),
            not_after,
        )
        .serial(Uint::from_u64(serial))
        .tls_server(vec![domain.to_owned()])
        .sign(leaf_kp.public_key(), issuer_kp)
        .expect("leaf issuance"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_structure() {
        let plan = issuance_plan();
        // 100 Zipf + 9 reissued + 8 AOSP-only + 33 extras + 8 iOS-only.
        assert_eq!(plan.len(), 158);
        let total: u32 = plan.iter().map(|e| e.leaves).sum();
        assert!(
            (7_000..10_000).contains(&total),
            "full-scale validated leaves ≈ 8.5k, got {total}"
        );
        // Zipf head dominates.
        assert!(plan[0].leaves > 1_000);
        assert!(plan[99].leaves < 30);
        // Some chains go through intermediates.
        assert_eq!(plan.iter().filter(|e| e.via_intermediate).count(), 10);
    }

    #[test]
    fn small_ecosystem_generates_and_verifies() {
        let eco = Ecosystem::generate(&EcosystemSpec::scaled(0.02));
        assert!(eco.len() > 150);
        assert!(eco.non_expired() < eco.len());
        // Spot-check: every chained cert cryptographically verifies
        // against its presented issuer.
        for c in eco.certs.iter().filter(|c| c.chain.len() > 1).take(20) {
            c.chain[0].verify_issued_by(&c.chain[1]).unwrap();
        }
        // Universe roots are identity-unique.
        let ids: std::collections::HashSet<_> = eco
            .universe_roots
            .iter()
            .map(|r| r.identity())
            .collect();
        assert_eq!(ids.len(), eco.universe_roots.len());
    }

    #[test]
    fn service_mix_is_https_heavy() {
        let eco = Ecosystem::generate(&EcosystemSpec::scaled(0.1));
        let hist: std::collections::HashMap<Service, usize> =
            eco.service_histogram().into_iter().collect();
        let total: usize = hist.values().sum();
        assert_eq!(total, eco.len());
        let https = hist[&Service::Https] as f64 / total as f64;
        assert!((0.6..0.85).contains(&https), "HTTPS share {https:.2}");
        // Every service class is represented.
        for svc in Service::ALL {
            assert!(hist[&svc] > 0, "{} missing", svc.label());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Ecosystem::generate(&EcosystemSpec::scaled(0.02));
        let b = Ecosystem::generate(&EcosystemSpec::scaled(0.02));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.certs.iter().zip(&b.certs) {
            assert_eq!(x.leaf().to_der(), y.leaf().to_der());
            assert_eq!(x.sessions, y.sessions);
        }
    }

    #[test]
    fn generation_is_pool_width_invariant() {
        let spec = EcosystemSpec::scaled(0.02);
        let seq = Ecosystem::generate_with_pool(&spec, &ExecPool::with_threads(1));
        let par = Ecosystem::generate_with_pool(&spec, &ExecPool::with_threads(8));
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.certs.iter().zip(&par.certs) {
            assert_eq!(a.leaf().to_der(), b.leaf().to_der());
            assert_eq!(a.chain.len(), b.chain.len());
            assert_eq!(a.sessions, b.sessions);
            assert_eq!(a.service, b.service);
        }
    }

    #[test]
    fn wild_leaves_do_not_chain_to_stores() {
        let eco = Ecosystem::generate(&EcosystemSpec::scaled(0.02));
        let universe: std::collections::HashSet<String> = eco
            .universe_roots
            .iter()
            .map(|r| r.subject.to_string())
            .collect();
        let wild = eco
            .certs
            .iter()
            .filter(|c| {
                let iss = c.leaf().issuer.to_string();
                iss.contains("Private Corp CA") || c.leaf().is_self_issued()
            })
            .count();
        assert!(wild > 30);
        for c in &eco.certs {
            if c.leaf().issuer.to_string().contains("Private Corp CA") {
                assert!(!universe.contains(&c.leaf().issuer.to_string()));
            }
        }
    }
}
