//! The chaos harness: a seeded client population driven through a wire
//! fault schedule against an in-process server.
//!
//! Everything here is synchronous and deterministic: the request mix
//! comes from [`crate::replay::queries`], each attempt runs the *real*
//! [`TrustClient`] over a [`ChaosStream`]-wrapped simulated connection
//! into the *real* server frame loop
//! ([`crate::server`]'s `serve_connection`), and every RNG is seeded.
//! Same [`ChaosSpec`], same faults, same outcomes, byte for byte — the
//! ledger is comparable with `cmp` across runs, which is exactly what
//! the CI chaos smoke does.
//!
//! The harness asserts the **conservation invariant**: every issued
//! request resolves to exactly one of
//!
//! * **answered-correct** — the reply's canonical form matches the
//!   verdict a clean offline service computes for the same request;
//! * **shed-with-busy** — every attempt was refused with an explicit
//!   `busy` frame;
//! * **failed-with-classified-fault** — attempts exhausted, and every
//!   failing attempt is matched by an injected fault in the chaos
//!   ledger.
//!
//! Anything else — a wrong answer or an unexplained transport error with
//! *no* injected fault to blame — is a conservation violation: a request
//! vanished or was silently corrupted by the stack itself.

use crate::client::TrustClient;
use crate::event::serve_stream;
use crate::replay::{canonical, population, queries, ReplaySpec};
use crate::server::serve_connection;
use crate::service::{TrustService, DEFAULT_CACHE_CAPACITY};
use crate::wire::{self, Response};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use tangled_faults::chaos::{ChaosPlan, ChaosStream, WireFault, WireFaultKind};

/// Which server core handles the simulated connections.
///
/// Both cores speak the identical wire protocol and classify the
/// identical fault set, so the chaos ledger — a pure function of the
/// bytes on the wire — must come out byte-identical under either. The
/// harness's core selector exists to *prove* that, not to change the
/// outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeCore {
    /// The blocking thread-per-connection frame loop
    /// ([`crate::server`]'s `serve_connection`).
    #[default]
    Threads,
    /// The readiness-loop event core ([`crate::event::serve_stream`]).
    Event,
}

impl ServeCore {
    /// Stable label for ledgers and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            ServeCore::Threads => "threads",
            ServeCore::Event => "event",
        }
    }
}

impl std::str::FromStr for ServeCore {
    type Err = String;
    fn from_str(s: &str) -> Result<ServeCore, String> {
        match s {
            "threads" => Ok(ServeCore::Threads),
            "event" => Ok(ServeCore::Event),
            other => Err(format!("unknown core {other:?} (expected threads|event)")),
        }
    }
}

/// What to run: request volume, fault schedule, retry budget.
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// Master seed for the population, the fault schedule and the busy
    /// schedule.
    pub seed: u64,
    /// Requests to issue.
    pub requests: usize,
    /// Per-frame fault injection rate.
    pub rate: f64,
    /// Probability that a given attempt is shed with `busy` at
    /// admission.
    pub busy_rate: f64,
    /// Attempts per request (first try included).
    pub max_attempts: u32,
    /// Fault kinds in play (defaults to every kind).
    pub kinds: Vec<WireFaultKind>,
    /// Which server core answers the simulated connections.
    pub core: ServeCore,
}

impl Default for ChaosSpec {
    fn default() -> ChaosSpec {
        ChaosSpec {
            seed: 42,
            requests: 200,
            rate: 0.25,
            busy_rate: 0.1,
            max_attempts: 4,
            kinds: WireFaultKind::ALL.to_vec(),
            core: ServeCore::default(),
        }
    }
}

/// The harness outcome: conservation tallies plus the deterministic
/// fault/outcome ledger.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Requests issued.
    pub issued: usize,
    /// Requests answered with the correct verdict.
    pub answered: usize,
    /// Requests shed with `busy` on every attempt.
    pub shed: usize,
    /// Requests that exhausted retries on classified, injected faults.
    pub failed: usize,
    /// Conservation violations (must be zero).
    pub violations: usize,
    /// Retry attempts performed beyond first tries.
    pub retries: u64,
    /// Injected faults by kind label.
    pub fault_counts: BTreeMap<&'static str, u64>,
    /// The line-per-attempt ledger (deterministic text; no timestamps).
    pub ledger: String,
}

impl ChaosReport {
    /// Does the conservation invariant hold?
    pub fn conserved(&self) -> bool {
        self.violations == 0 && self.answered + self.shed + self.failed == self.issued
    }
}

/// One simulated connection to an in-process server.
///
/// The client writes its (chaos-damaged) request bytes into `inbox`;
/// the first read runs the real server frame loop over them — or, when
/// the admission roll shed this attempt, emits a lone `busy` frame —
/// and subsequent reads drain the server's output. End of output is a
/// clean close, exactly like a TCP FIN at a frame boundary.
struct SimConn<'a> {
    service: &'a TrustService,
    inbox: Vec<u8>,
    outbox: Vec<u8>,
    pos: usize,
    served: bool,
    busy: bool,
    core: ServeCore,
}

impl<'a> SimConn<'a> {
    fn new(service: &'a TrustService, busy: bool, core: ServeCore) -> SimConn<'a> {
        SimConn {
            service,
            inbox: Vec::new(),
            outbox: Vec::new(),
            pos: 0,
            served: false,
            busy,
            core,
        }
    }

    fn run_server(&mut self) {
        if self.busy {
            // Admission shed: the server never reads the request — it
            // answers one busy frame and closes, same as the TCP accept
            // thread over its backlog budget.
            let _ = wire::write_frame(&mut self.outbox, &Response::Busy.encode());
            return;
        }
        let stop = AtomicBool::new(false);
        let mut stream = ServerSide {
            input: &self.inbox,
            pos: 0,
            output: &mut self.outbox,
        };
        match self.core {
            ServeCore::Threads => {
                serve_connection(&mut stream, self.service, &stop, 1000, 0);
            }
            ServeCore::Event => {
                serve_stream(&mut stream, self.service, &stop, 1000, 0);
            }
        }
    }
}

impl Read for SimConn<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if !self.served {
            self.served = true;
            self.run_server();
        }
        if self.pos >= self.outbox.len() {
            return Ok(0);
        }
        let n = buf.len().min(self.outbox.len() - self.pos);
        buf[..n].copy_from_slice(&self.outbox[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for SimConn<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inbox.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The server's view of a [`SimConn`]: reads drain the client's bytes
/// (EOF afterwards = the client half-closed), writes collect replies.
struct ServerSide<'a> {
    input: &'a [u8],
    pos: usize,
    output: &'a mut Vec<u8>,
}

impl Read for ServerSide<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.input.len() {
            return Ok(0);
        }
        let n = buf.len().min(self.input.len() - self.pos);
        buf[..n].copy_from_slice(&self.input[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for ServerSide<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.output.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// How one attempt resolved.
enum Attempt {
    Correct,
    Busy,
    /// Server answered a classified wire-stage error (damaged frame).
    Rejected(String),
    /// Server answered, but not the expected verdict.
    Mismatch(String),
    /// The call failed at the transport layer.
    Transport(&'static str),
}

/// Run the harness.
pub fn run(spec: &ChaosSpec) -> ChaosReport {
    let replay_spec = ReplaySpec::new(spec.seed, spec.requests.max(1));
    let pop = population(&replay_spec);
    let mut requests = queries(&pop, &replay_spec);
    requests.truncate(spec.requests.max(1));

    // Expected verdicts from a clean, fault-free service — the oracle.
    let oracle = TrustService::new(DEFAULT_CACHE_CAPACITY);
    let expected: Vec<String> = requests
        .iter()
        .map(|req| canonical(&oracle.handle(req)))
        .collect();

    // The service under fire. Separate instance so the oracle's counters
    // stay clean.
    let service = TrustService::new(DEFAULT_CACHE_CAPACITY);

    let plan = ChaosPlan::new(spec.seed).with_rate(spec.rate).only(&spec.kinds);
    let mut busy_rng = StdRng::seed_from_u64(spec.seed ^ 0xB05B_B05B_B05B_B05B);

    let mut report = ChaosReport {
        issued: requests.len(),
        answered: 0,
        shed: 0,
        failed: 0,
        violations: 0,
        retries: 0,
        fault_counts: BTreeMap::new(),
        ledger: String::new(),
    };
    let mut salt = 0u64;

    for (i, req) in requests.iter().enumerate() {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            salt += 1;
            let busy = busy_rng.gen_bool(spec.busy_rate);
            let ledger = Arc::new(Mutex::new(Vec::<WireFault>::new()));
            let conn = SimConn::new(&service, busy, spec.core);
            let stream = ChaosStream::with_ledger(conn, &plan, salt, Arc::clone(&ledger));
            let mut client = TrustClient::from_stream(stream);
            client.set_response_ticks(50);

            let result = client.call(req);
            let faults = ledger.lock().expect("chaos ledger poisoned").clone();
            for f in &faults {
                *report.fault_counts.entry(f.kind.label()).or_default() += 1;
            }
            let fault_label = faults
                .first()
                .map(|f| f.kind.label())
                .unwrap_or("none");

            let outcome = match result {
                Ok(Response::Busy) => Attempt::Busy,
                Ok(resp) => {
                    let c = canonical(&resp);
                    if c == expected[i] {
                        Attempt::Correct
                    } else if matches!(&resp, Response::Error { stage, .. } if stage == "wire")
                    {
                        Attempt::Rejected(c)
                    } else {
                        Attempt::Mismatch(c)
                    }
                }
                Err(e) => Attempt::Transport(match e {
                    crate::client::ClientError::Io(_) => "transport",
                    crate::client::ClientError::Protocol(_) => "protocol",
                    crate::client::ClientError::Closed => "disconnect",
                    crate::client::ClientError::TimedOut => "timeout",
                }),
            };

            let injected = !faults.is_empty();
            let exhausted = attempt >= spec.max_attempts;
            let (outcome_text, action) = match &outcome {
                Attempt::Correct => ("answered".to_owned(), "done"),
                Attempt::Busy => (
                    "busy".to_owned(),
                    if exhausted { "shed" } else { "retry" },
                ),
                Attempt::Rejected(c) | Attempt::Mismatch(c) => {
                    let text = match &outcome {
                        Attempt::Rejected(_) => format!("rejected:{c}"),
                        _ => format!("mismatch:{c}"),
                    };
                    if !injected {
                        // The stack itself corrupted or misanswered an
                        // undamaged request: conservation breach.
                        (text, "violation")
                    } else if exhausted {
                        (text, "failed")
                    } else {
                        (text, "retry")
                    }
                }
                Attempt::Transport(label) => {
                    let text = format!("transport:{label}");
                    if !injected {
                        (text, "violation")
                    } else if exhausted {
                        (text, "failed")
                    } else {
                        (text, "retry")
                    }
                }
            };

            report.ledger.push_str(&format!(
                "req={i:04} kind={} attempt={attempt} busy={} fault={fault_label} \
                 outcome={outcome_text} action={action}\n",
                req.kind(),
                if busy { 1 } else { 0 },
            ));

            match action {
                "done" => {
                    report.answered += 1;
                    break;
                }
                "shed" => {
                    report.shed += 1;
                    break;
                }
                "failed" => {
                    report.failed += 1;
                    break;
                }
                "violation" => {
                    report.violations += 1;
                    break;
                }
                _ => {
                    report.retries += 1;
                }
            }
        }
    }

    report.ledger.push_str(&format!(
        "summary: issued={} answered={} shed={} failed={} violations={} retries={}\n",
        report.issued,
        report.answered,
        report.shed,
        report.failed,
        report.violations,
        report.retries,
    ));
    for (label, n) in &report.fault_counts {
        report.ledger.push_str(&format!("fault: {label}={n}\n"));
    }
    report.ledger.push_str(&format!(
        "conservation: {}\n",
        if report.conserved() { "ok" } else { "VIOLATED" }
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Request;

    fn small_spec() -> ChaosSpec {
        ChaosSpec {
            requests: 40,
            ..ChaosSpec::default()
        }
    }

    #[test]
    fn ledger_is_deterministic_across_runs() {
        let a = run(&small_spec());
        let b = run(&small_spec());
        assert_eq!(a.ledger, b.ledger, "same spec, same ledger bytes");
        assert!(a.conserved(), "{}", a.ledger);
        assert!(
            !a.fault_counts.is_empty(),
            "rate 0.25 over 40+ attempts injects faults"
        );
    }

    #[test]
    fn different_seeds_schedule_different_faults() {
        let a = run(&small_spec());
        let b = run(&ChaosSpec {
            seed: 43,
            ..small_spec()
        });
        assert_ne!(a.ledger, b.ledger);
        assert!(b.conserved(), "{}", b.ledger);
    }

    #[test]
    fn conservation_holds_under_each_fault_kind_alone() {
        for kind in WireFaultKind::ALL {
            let spec = ChaosSpec {
                requests: 12,
                rate: 1.0,
                busy_rate: 0.0,
                kinds: vec![kind],
                ..ChaosSpec::default()
            };
            let report = run(&spec);
            assert!(
                report.conserved(),
                "conservation violated under {kind}:\n{}",
                report.ledger
            );
            assert_eq!(
                report.fault_counts.keys().copied().collect::<Vec<_>>(),
                vec![kind.label()],
                "only {kind} scheduled"
            );
        }
    }

    #[test]
    fn pure_busy_storm_sheds_everything() {
        let spec = ChaosSpec {
            requests: 10,
            rate: 0.0,
            busy_rate: 1.0,
            ..ChaosSpec::default()
        };
        let report = run(&spec);
        assert!(report.conserved(), "{}", report.ledger);
        assert_eq!(report.shed, 10, "every request shed:\n{}", report.ledger);
        assert_eq!(report.retries, 30, "3 retries each before giving up");
    }

    #[test]
    fn no_faults_means_every_request_answers() {
        let spec = ChaosSpec {
            requests: 20,
            rate: 0.0,
            busy_rate: 0.0,
            ..ChaosSpec::default()
        };
        let report = run(&spec);
        assert!(report.conserved());
        assert_eq!(report.answered, 20);
        assert_eq!(report.retries, 0);
        assert!(report.fault_counts.is_empty());
    }

    /// The conservation invariant is core-independent: the event core
    /// sees the same damaged bytes and must classify them identically,
    /// so the whole ledger — fault schedule, outcomes, actions — comes
    /// out byte-for-byte equal to the threads core's.
    #[test]
    fn event_core_ledger_is_byte_identical_to_threads() {
        let threads = run(&small_spec());
        let event = run(&ChaosSpec {
            core: ServeCore::Event,
            ..small_spec()
        });
        assert!(event.conserved(), "{}", event.ledger);
        assert_eq!(
            threads.ledger, event.ledger,
            "same spec, same bytes on the wire, same ledger"
        );
    }

    /// Saturation check against the event core specifically: rate 1.0
    /// damages every frame, and every failure must still trace back to
    /// an injected fault.
    #[test]
    fn event_core_conserves_under_full_fault_rate() {
        let spec = ChaosSpec {
            requests: 12,
            rate: 1.0,
            busy_rate: 0.0,
            core: ServeCore::Event,
            ..ChaosSpec::default()
        };
        let report = run(&spec);
        assert!(report.conserved(), "{}", report.ledger);
        assert!(!report.fault_counts.is_empty());
    }

    /// The chaos wrapper also works on the *server* side: replies get
    /// damaged after the service computed them, and the real client
    /// classifies the damage instead of accepting it.
    #[test]
    fn server_side_chaos_corrupts_replies_detectably() {
        let service = TrustService::new(16);
        let plan = ChaosPlan::new(9)
            .with_rate(1.0)
            .only(&[WireFaultKind::BitFlip]);

        // Run the server over a chaos-wrapped stream: its reply frames
        // are bit-flipped on the way out.
        let request_bytes = {
            let mut buf = Vec::new();
            wire::write_frame(&mut buf, &Request::Stats.encode()).unwrap();
            buf
        };
        let mut replies = Vec::new();
        {
            let side = ServerSide {
                input: &request_bytes,
                pos: 0,
                output: &mut replies,
            };
            let mut chaos = ChaosStream::new(side, &plan, 0);
            let stop = AtomicBool::new(false);
            serve_connection(&mut chaos, &service, &stop, 1000, 0);
        }
        // The client sees a frame whose body no longer decodes (or whose
        // JSON changed); either way it is classified, never silent.
        let frame = wire::read_frame(&mut io::Cursor::new(replies))
            .expect("framing intact")
            .expect("one reply");
        let clean = Response::Stats(service.stats_document());
        match Response::decode(&frame) {
            Ok(resp) => assert_ne!(
                serde_json::to_string(&resp.to_value()).unwrap(),
                serde_json::to_string(&clean.to_value()).unwrap(),
                "flip must alter the reply"
            ),
            Err(e) => assert!(!e.label().is_empty(), "classified: {e}"),
        }
    }
}
