//! Parallel execution layer benchmarks (DESIGN.md §10).
//!
//! Measures the four hot paths wired through [`tangled_exec::ExecPool`]
//! at pool width 1 (the sequential baseline) versus wider pools, plus the
//! effect of the process-wide signature-verification memo on a repeated
//! validation-index build. Determinism is asserted elsewhere
//! (`tests/determinism.rs`); this harness only times the same work.
//!
//! On a single-core container the multi-thread rows are expected to sit
//! at ~1x — the point of recording them is the comparison, not the
//! absolute number.

use criterion::black_box;
use tangled_bench::criterion;
use tangled_core::Study;
use tangled_exec::{set_thread_override, ExecPool};
use tangled_faults::FaultPlan;
use tangled_netalyzr::population::{Population, PopulationSpec};
use tangled_notary::ecosystem::EcosystemSpec;
use tangled_notary::{Ecosystem, ValidationIndex};
use tangled_x509::sig_memo_clear;

fn main() {
    let mut c = criterion();

    // Validation-index build: cold signature memo each iteration so the
    // widths are comparable, then one warm-memo row for the ablation.
    let eco = Ecosystem::generate(&EcosystemSpec::scaled(0.25));
    for width in [1usize, 2, 4] {
        let pool = ExecPool::with_threads(width);
        c.bench_function(&format!("parallel/validation_build_{width}t"), |b| {
            b.iter(|| {
                sig_memo_clear();
                black_box(ValidationIndex::build_with_pool(&eco, &pool))
            })
        });
    }
    c.bench_function("parallel/validation_build_warm_sigmemo", |b| {
        b.iter(|| black_box(ValidationIndex::build(&eco)))
    });

    // Ecosystem generation: phase A (RNG walk) is sequential by design;
    // the width only parallelises the RSA leaf signing in phase B.
    let espec = EcosystemSpec::scaled(0.1);
    for width in [1usize, 4] {
        let pool = ExecPool::with_threads(width);
        c.bench_function(&format!("parallel/ecosystem_generate_{width}t"), |b| {
            b.iter(|| black_box(Ecosystem::generate_with_pool(&espec, &pool).len()))
        });
    }

    // Population generation: per-device draws run on split-seed sub-RNGs.
    let pspec = PopulationSpec::scaled(0.25);
    for width in [1usize, 4] {
        let pool = ExecPool::with_threads(width);
        c.bench_function(&format!("parallel/population_generate_{width}t"), |b| {
            b.iter(|| black_box(Population::generate_with_pool(&pspec, &pool).devices.len()))
        });
    }

    // Degraded study: the per-store cacerts render/damage/reload loop goes
    // through the ambient pool, so drive it via the thread override.
    let plan = FaultPlan::new(404).with_rate(0.05);
    for width in [1usize, 4] {
        set_thread_override(Some(width));
        c.bench_function(&format!("parallel/with_faults_{width}t"), |b| {
            b.iter(|| {
                sig_memo_clear();
                black_box(Study::with_faults(0.05, 0.02, &plan).injected.len())
            })
        });
        set_thread_override(None);
    }

    c.final_summary();
}
