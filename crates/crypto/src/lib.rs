//! `tangled-crypto` — from-scratch cryptographic substrate for the
//! *tangled-mass* workspace.
//!
//! The reproduction needs real certificate chains whose signatures actually
//! verify, but the offline dependency allowlist carries no cryptography
//! crates. This crate therefore implements, from first principles:
//!
//! * arbitrary-precision unsigned integers ([`bigint::Uint`]),
//! * modular arithmetic (modpow, modular inverse) ([`modular`]),
//! * Miller–Rabin primality testing and prime generation ([`prime`]),
//! * RSA key generation, PKCS#1 v1.5 signing and verification ([`rsa`]),
//! * SHA-1 and SHA-256 ([`sha1`], [`sha256`]) and HMAC ([`hmac`]),
//! * a small deterministic PRNG ([`rng::SplitMix64`]) so key generation is
//!   reproducible from a seed,
//! * the workspace's shared non-cryptographic hashes ([`hash`]): FNV-1a
//!   (span IDs, catalogue keys, snapshot checksums) and the SplitMix64
//!   finalizer (seed splitting).
//!
//! Keys default to 512 bits in tests and 1024 bits in examples: large enough
//! to exercise every code path (multi-limb arithmetic, normalization in
//! division, PKCS#1 padding) while keeping from-scratch keygen fast.
//!
//! This crate is **not** intended to protect real traffic; it exists so the
//! measurement pipeline operates on genuine X.509 objects rather than mocks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod hash;
pub mod hmac;
pub mod modular;
pub mod prime;
pub mod rng;
pub mod rsa;
pub mod sha1;
pub mod sha256;

pub use bigint::Uint;
pub use rng::SplitMix64;
pub use rsa::{RsaKeyPair, RsaPublicKey, SignatureAlgorithm};

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Attempted division (or modular reduction) by zero.
    DivisionByZero,
    /// No modular inverse exists (operands not coprime).
    NotInvertible,
    /// A signature failed to verify.
    BadSignature,
    /// The message (or its encoding) does not fit in the modulus.
    MessageTooLong,
    /// Key generation failed to find suitable primes within the attempt
    /// budget (practically unreachable with a working PRNG).
    KeyGenExhausted,
    /// Malformed key material (e.g. zero modulus).
    InvalidKey,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::DivisionByZero => write!(f, "division by zero"),
            CryptoError::NotInvertible => write!(f, "element is not invertible"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::MessageTooLong => write!(f, "message too long for modulus"),
            CryptoError::KeyGenExhausted => write!(f, "key generation attempt budget exhausted"),
            CryptoError::InvalidKey => write!(f, "invalid key material"),
        }
    }
}

impl std::error::Error for CryptoError {}
