//! `tangled-mass` — facade crate for the full workspace.
//!
//! Re-exports every subsystem of the reproduction of *“A Tangled Mass: The
//! Android Root Certificate Stores”* (CoNEXT 2014) under one roof, so
//! examples and downstream users can depend on a single crate.
//!
//! ```
//! use tangled_mass::pki::stores::ReferenceStore;
//!
//! let aosp44 = ReferenceStore::Aosp44.build();
//! assert_eq!(aosp44.len(), 150); // Table 1 of the paper
//! ```

#![forbid(unsafe_code)]

pub use tangled_asn1 as asn1;
pub use tangled_core as analysis;
pub use tangled_exec as exec;
pub use tangled_crypto as crypto;
pub use tangled_disparity as disparity;
pub use tangled_faults as faults;
pub use tangled_intercept as intercept;
pub use tangled_netalyzr as netalyzr;
pub use tangled_obs as obs;
pub use tangled_notary as notary;
pub use tangled_pki as pki;
pub use tangled_scenario as scenario;
pub use tangled_snap as snap;
pub use tangled_trustd as trustd;
pub use tangled_x509 as x509;
