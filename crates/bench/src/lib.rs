//! `tangled-bench` — the benchmark harness.
//!
//! Each Criterion bench target first *prints* the paper artifact it
//! regenerates (tables as text, figures as data summaries), then measures
//! the generation code:
//!
//! * `benches/paper_tables.rs` — Tables 1–6;
//! * `benches/paper_figures.rs` — Figures 1–3;
//! * `benches/ablations.rs` — the DESIGN.md §5 design-choice ablations
//!   (certificate identity, diff algorithm, chain building, validation
//!   memoisation, Montgomery exponentiation).
//!
//! Run with `cargo bench --workspace`; see EXPERIMENTS.md for the mapping
//! to the paper's numbers.

/// Shared bench-harness configuration: small samples and short
/// measurement windows — the artifacts themselves, not micro-second
/// precision, are the point on a one-core runner.
pub fn criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}

/// The population/ecosystem scales the harness runs at. Half-scale
/// population and quarter-scale ecosystem preserve every calibrated
/// ordering while keeping a full `cargo bench` run in minutes.
pub const POPULATION_SCALE: f64 = 0.5;

/// Ecosystem scale for the harness (see [`POPULATION_SCALE`]).
pub const ECOSYSTEM_SCALE: f64 = 0.25;
