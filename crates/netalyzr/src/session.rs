//! Netalyzr sessions: one execution of the measurement app on a device.

use crate::device::DeviceId;
use tangled_asn1::Time;

/// Network attachment at session time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// Wi-Fi access point.
    Wifi,
    /// Cellular data.
    Cellular,
}

/// One Netalyzr execution.
#[derive(Debug, Clone)]
pub struct Session {
    /// Sequential session number (0-based, generation order).
    pub index: u32,
    /// The device that ran the session.
    pub device: DeviceId,
    /// When the session ran (within the paper's Nov 2013 – Apr 2014 window).
    pub at: Time,
    /// Network attachment.
    pub network: NetworkKind,
}

/// The study window start (November 2013).
pub fn study_start() -> Time {
    Time::date(2013, 11, 1).expect("valid date")
}

/// The study window end (April 2014, inclusive).
pub fn study_end() -> Time {
    Time::date(2014, 4, 30).expect("valid date")
}

/// The number of days in the study window.
pub fn study_days() -> i64 {
    (study_end().to_unix() - study_start().to_unix()) / 86_400
}

#[cfg(test)]
mod tests {
    use super::*;
    

    #[test]
    fn window_spans_six_months() {
        assert_eq!(study_days(), 180);
        assert!(study_start() < study_end());
    }
}
