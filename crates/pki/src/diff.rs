//! Root-store diffing — the audit primitive behind Figure 1 and §5.
//!
//! A [`StoreDiff`] between a *baseline* store (e.g. the AOSP distribution
//! for the device's OS version) and an *observed* store (what Netalyzr saw
//! on the handset) lists the anchors added, removed, and carried over. The
//! paper's headline "39 % of sessions have additional certificates … only 5
//! handsets were missing certificates" is exactly `added / removed` of this
//! diff.
//!
//! Two implementations are provided — a hash join and a sorted merge — with
//! identical results; the bench crate ablates them (DESIGN.md §5.3).
//! Identity granularity is configurable via [`IdentityMode`] for the
//! identity ablation (DESIGN.md §5.1).

use crate::store::RootStore;
use tangled_x509::CertIdentity;

/// How two certificates are considered "the same" for diffing purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdentityMode {
    /// Byte-exact DER equality (SHA-256 of the encoding).
    ByteHash,
    /// The paper's equivalence: subject string + RSA modulus.
    SubjectAndModulus,
    /// Modulus only (over-merges distinct subjects sharing a key).
    ModulusOnly,
}

/// An opaque identity key under a chosen [`IdentityMode`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdentityKey(String);

impl IdentityKey {
    /// Compute the key for an anchor certificate.
    pub fn of(cert: &tangled_x509::Certificate, mode: IdentityMode) -> IdentityKey {
        match mode {
            IdentityMode::ByteHash => {
                IdentityKey(tangled_crypto::sha256::hex(&cert.fingerprint_sha256()))
            }
            IdentityMode::SubjectAndModulus => IdentityKey(format!(
                "{}|{}",
                cert.subject,
                cert.public_key.modulus.to_hex()
            )),
            IdentityMode::ModulusOnly => IdentityKey(cert.public_key.modulus.to_hex()),
        }
    }
}

/// The result of diffing an observed store against a baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreDiff {
    /// Identities present in `observed` but not in `baseline`
    /// (vendor/operator/user additions), in observed-store order.
    pub added: Vec<CertIdentity>,
    /// Identities present in `baseline` but missing from `observed`,
    /// in baseline-store order.
    pub removed: Vec<CertIdentity>,
    /// Identities present in both, in baseline-store order.
    pub common: Vec<CertIdentity>,
}

impl StoreDiff {
    /// Are the two stores identical (under the paper's identity)?
    pub fn is_identity(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Number of additions.
    pub fn added_count(&self) -> usize {
        self.added.len()
    }

    /// Number of removals.
    pub fn removed_count(&self) -> usize {
        self.removed.len()
    }
}

/// Diff `observed` against `baseline` using the paper's identity, via hash
/// join. O(n + m).
pub fn diff(baseline: &RootStore, observed: &RootStore) -> StoreDiff {
    let base: std::collections::HashSet<&CertIdentity> = baseline.identities().iter().collect();
    let obs: std::collections::HashSet<&CertIdentity> = observed.identities().iter().collect();
    StoreDiff {
        added: observed
            .identities()
            .iter()
            .filter(|id| !base.contains(id))
            .cloned()
            .collect(),
        removed: baseline
            .identities()
            .iter()
            .filter(|id| !obs.contains(id))
            .cloned()
            .collect(),
        common: baseline
            .identities()
            .iter()
            .filter(|id| obs.contains(id))
            .cloned()
            .collect(),
    }
}

/// Diff via sorted merge. O(n log n + m log m), no hash sets — kept for the
/// ablation benchmark. Output vectors are sorted by identity rather than by
/// store order.
pub fn diff_sorted_merge(baseline: &RootStore, observed: &RootStore) -> StoreDiff {
    let mut base: Vec<&CertIdentity> = baseline.identities().iter().collect();
    let mut obs: Vec<&CertIdentity> = observed.identities().iter().collect();
    base.sort();
    obs.sort();

    let mut added = Vec::new();
    let mut removed = Vec::new();
    let mut common = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < base.len() && j < obs.len() {
        match base[i].cmp(obs[j]) {
            std::cmp::Ordering::Less => {
                removed.push(base[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(obs[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                common.push(base[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend(base[i..].iter().map(|id| (*id).clone()));
    added.extend(obs[j..].iter().map(|id| (*id).clone()));
    StoreDiff {
        added,
        removed,
        common,
    }
}

/// Count distinct certificates in a collection under a given identity mode
/// (the DESIGN.md §5.1 ablation: the paper's 314-unique-of-2.3-million
/// depends on which identity is used).
pub fn distinct_count<'a>(
    certs: impl IntoIterator<Item = &'a tangled_x509::Certificate>,
    mode: IdentityMode,
) -> usize {
    certs
        .into_iter()
        .map(|c| IdentityKey::of(c, mode))
        .collect::<std::collections::HashSet<_>>()
        .len()
}

/// Apply a diff to a baseline, reproducing the observed store's identity
/// set (used by the property tests: `apply(a, diff(a, b)) ≡ b`).
pub fn apply(baseline: &RootStore, diff: &StoreDiff, observed: &RootStore) -> RootStore {
    let mut out = RootStore::new(observed.name());
    for id in &diff.common {
        if let Some(anchor) = baseline.get(id) {
            out.add(anchor.clone());
        }
    }
    for id in &diff.added {
        if let Some(anchor) = observed.get(id) {
            out.add(anchor.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::CaFactory;
    use crate::trust::AnchorSource;

    fn mk(names: &[&str]) -> RootStore {
        let mut f = CaFactory::new();
        let mut s = RootStore::new("s");
        for n in names {
            s.add_cert(f.root(n), AnchorSource::Aosp);
        }
        s
    }

    #[test]
    fn diff_of_identical_is_empty() {
        let a = mk(&["A", "B", "C"]);
        let b = mk(&["A", "B", "C"]);
        let d = diff(&a, &b);
        assert!(d.is_identity());
        assert_eq!(d.common.len(), 3);
    }

    #[test]
    fn additions_and_removals_detected() {
        let baseline = mk(&["A", "B", "C"]);
        let observed = mk(&["B", "C", "D", "E"]);
        let d = diff(&baseline, &observed);
        let names = |ids: &[CertIdentity]| -> Vec<String> {
            ids.iter().map(|i| i.subject.clone()).collect()
        };
        assert_eq!(names(&d.added), vec!["CN=D", "CN=E"]);
        assert_eq!(names(&d.removed), vec!["CN=A"]);
        assert_eq!(names(&d.common), vec!["CN=B", "CN=C"]);
    }

    #[test]
    fn sorted_merge_agrees_with_hash_join() {
        let baseline = mk(&["A", "B", "C", "Q", "Z"]);
        let observed = mk(&["B", "D", "Q", "X"]);
        let h = diff(&baseline, &observed);
        let m = diff_sorted_merge(&baseline, &observed);
        let as_set = |v: &[CertIdentity]| -> std::collections::BTreeSet<CertIdentity> {
            v.iter().cloned().collect()
        };
        assert_eq!(as_set(&h.added), as_set(&m.added));
        assert_eq!(as_set(&h.removed), as_set(&m.removed));
        assert_eq!(as_set(&h.common), as_set(&m.common));
    }

    #[test]
    fn empty_store_edges() {
        let empty = RootStore::new("empty");
        let full = mk(&["A", "B"]);
        let d = diff(&empty, &full);
        assert_eq!(d.added.len(), 2);
        assert!(d.removed.is_empty());
        let d = diff(&full, &empty);
        assert_eq!(d.removed.len(), 2);
        assert!(d.added.is_empty());
        assert!(diff(&empty, &empty).is_identity());
    }

    #[test]
    fn reissued_cert_is_not_an_addition() {
        // The paper: equivalent certs (same subject+modulus, new expiry)
        // must not count as additions.
        let mut f = CaFactory::new();
        let mut baseline = RootStore::new("base");
        baseline.add_cert(f.root("Equiv CA"), AnchorSource::Aosp);
        let mut observed = RootStore::new("obs");
        observed.add_cert(f.reissued_root("Equiv CA"), AnchorSource::Aosp);
        let d = diff(&baseline, &observed);
        assert!(d.is_identity());
    }

    #[test]
    fn identity_mode_granularity() {
        let mut f = CaFactory::new();
        let orig = f.root("Mode CA");
        let re = f.reissued_root("Mode CA");
        let other = f.root("Other CA");
        let certs = [orig.as_ref().clone(), re.as_ref().clone(), other.as_ref().clone()];
        assert_eq!(distinct_count(certs.iter(), IdentityMode::ByteHash), 3);
        assert_eq!(
            distinct_count(certs.iter(), IdentityMode::SubjectAndModulus),
            2
        );
        assert_eq!(distinct_count(certs.iter(), IdentityMode::ModulusOnly), 2);
    }

    #[test]
    fn modulus_only_over_merges() {
        // Same key under two different subjects: modulus-only merges them,
        // the paper's identity keeps them apart.
        let mut f = CaFactory::new();
        let kp = f.keypair("shared-key");
        let mk_cert = |cn: &str| {
            tangled_x509::CertificateBuilder::new(
                tangled_x509::DistinguishedName::common_name(cn),
                tangled_x509::DistinguishedName::common_name(cn),
                tangled_asn1::Time::date(2010, 1, 1).unwrap(),
                tangled_asn1::Time::date(2020, 1, 1).unwrap(),
            )
            .ca(None)
            .sign(kp.public_key(), &kp)
            .unwrap()
        };
        let a = mk_cert("Subject A");
        let b = mk_cert("Subject B");
        let certs = [a, b];
        assert_eq!(distinct_count(certs.iter(), IdentityMode::ModulusOnly), 1);
        assert_eq!(
            distinct_count(certs.iter(), IdentityMode::SubjectAndModulus),
            2
        );
    }

    #[test]
    fn apply_reconstructs_observed() {
        let baseline = mk(&["A", "B", "C"]);
        let observed = mk(&["B", "C", "D"]);
        let d = diff(&baseline, &observed);
        let rebuilt = apply(&baseline, &d, &observed);
        let d2 = diff(&observed, &rebuilt);
        assert!(d2.is_identity());
    }
}
