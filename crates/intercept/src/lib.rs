//! `tangled-intercept` — TLS interception modelling and detection (§7 of
//! the paper).
//!
//! The paper found a marketing company (Reality Mine) proxying a user's
//! HTTPS traffic through a `tun` interface, re-generating "both root and
//! intermediate certificates on-the-fly for specific domains" while
//! whitelisting services known to deploy certificate pinning (Table 6).
//!
//! The model operates at the certificate-chain layer — exactly what
//! Netalyzr records — rather than as a live TLS handshake:
//!
//! * [`origin`] serves the *legitimate* chain for each probed domain,
//!   anchored in the public web PKI of [`tangled_pki::stores`];
//! * [`proxy`] implements the intercepting middlebox: its own root and
//!   issuing CA, a per-(domain, port) policy, and on-the-fly leaf
//!   re-signing;
//! * [`detect`] implements the Netalyzr-side check: validate the presented
//!   chain against the device's root store, compare the anchor against
//!   the expectation, and apply app-style certificate pinning;
//! * [`defect`] models client-side validator defects (accept-all trust
//!   managers, missing hostname checks, pin bypass, stale stores) and
//!   attributes each successful interception to the defect that enabled
//!   it — the substrate of the `tangled mitm` scenario engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod defect;
pub mod detect;
pub mod origin;
pub mod policy;
pub mod proxy;

pub use defect::{evaluate_session, DefectClass, SessionInput, SessionOutcome};
pub use detect::{probe, ProbeReport, Verdict};
pub use policy::{ProxyPolicy, Target, INTERCEPTED_DOMAINS, WHITELISTED_DOMAINS};
pub use proxy::{MintError, MitmProxy, ProxyHierarchy};

/// The probe instant (same study time as the rest of the workspace),
/// 2014-02-01T00:00:00Z. Infallible: the unix form backs the calendar
/// constructor so no date arithmetic can panic the engine.
pub fn study_time() -> tangled_asn1::Time {
    tangled_asn1::Time::date(2014, 2, 1)
        .unwrap_or_else(|| tangled_asn1::Time::from_unix(1_391_212_800))
}
