//! Arbitrary-precision unsigned integers on 64-bit limbs.
//!
//! [`Uint`] stores its magnitude as little-endian `u64` limbs with no leading
//! zero limbs (canonical form; zero is the empty limb vector). The type
//! implements schoolbook addition/subtraction/multiplication and Knuth
//! Algorithm D division, which is ample for the 512–2048-bit moduli this
//! workspace uses.

use crate::CryptoError;
use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer.
///
/// Canonical representation: little-endian `u64` limbs, no trailing
/// (most-significant) zero limbs. `Uint::zero()` has zero limbs.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Uint {
    limbs: Vec<u64>,
}

impl Uint {
    /// The value 0.
    pub fn zero() -> Self {
        Uint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Uint { limbs: vec![1] }
    }

    /// Construct from a primitive `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Uint::zero()
        } else {
            Uint { limbs: vec![v] }
        }
    }

    /// Construct from a primitive `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut u = Uint { limbs: vec![lo, hi] };
        u.normalize();
        u
    }

    /// Construct from little-endian limbs (normalizing).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut u = Uint { limbs };
        u.normalize();
        u
    }

    /// Construct from big-endian bytes (the natural wire order for DER
    /// INTEGER contents and RSA moduli).
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Uint::from_limbs(limbs)
    }

    /// Serialize to minimal big-endian bytes (no leading zero byte; zero
    /// serializes to a single `0x00`).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return vec![0];
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let first = bytes.iter().position(|&b| b != 0).unwrap_or(7);
                out.extend_from_slice(&bytes[first..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serialize to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// Returns `None` if the value does not fit.
    pub fn to_be_bytes_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = if self.is_zero() { Vec::new() } else { self.to_be_bytes() };
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// Parse from an ASCII hex string (no prefix). Empty input is zero.
    pub fn from_hex(s: &str) -> Option<Self> {
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let s = s.as_bytes();
        let mut i = 0;
        // Handle odd-length strings by treating the first nibble alone.
        if s.len() % 2 == 1 {
            bytes.push(hex_val(s[0])?);
            i = 1;
        }
        while i < s.len() {
            bytes.push(hex_val(s[i])? << 4 | hex_val(s[i + 1])?);
            i += 2;
        }
        Some(Uint::from_be_bytes(&bytes))
    }

    /// Render as lowercase hex with no leading zeros (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let bytes = self.to_be_bytes();
        let mut s = String::with_capacity(bytes.len() * 2);
        for (i, b) in bytes.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{:x}", b));
            } else {
                s.push_str(&format!("{:02x}", b));
            }
        }
        s
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (little-endian bit order), false past the top.
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Borrow the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Lowest 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    #[allow(clippy::needless_range_loop)] // indexed limbs: the standard idiom
    pub fn add(&self, other: &Uint) -> Uint {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for i in 0..a.len() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (s1, c1) = a[i].overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        Uint::from_limbs(out)
    }

    /// `self + v` for a small addend.
    pub fn add_u64(&self, v: u64) -> Uint {
        self.add(&Uint::from_u64(v))
    }

    /// `self - other`; returns `None` when the result would be negative.
    #[allow(clippy::needless_range_loop)] // indexed limbs: the standard idiom
    pub fn checked_sub(&self, other: &Uint) -> Option<Uint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let bi = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(Uint::from_limbs(out))
    }

    /// `self - other`, panicking on underflow. Library code prefers
    /// [`Uint::checked_sub`]; this is for arithmetic already guarded by a
    /// comparison.
    pub fn sub(&self, other: &Uint) -> Uint {
        self.checked_sub(other)
            .expect("Uint::sub underflow — caller must guarantee self >= other")
    }

    /// `self * other` (schoolbook, O(n·m)).
    pub fn mul(&self, other: &Uint) -> Uint {
        if self.is_zero() || other.is_zero() {
            return Uint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Uint::from_limbs(out)
    }

    /// `self * v` for a small multiplier.
    pub fn mul_u64(&self, v: u64) -> Uint {
        if v == 0 || self.is_zero() {
            return Uint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = a as u128 * v as u128 + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        Uint::from_limbs(out)
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> Uint {
        if self.is_zero() {
            return Uint::zero();
        }
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Uint::from_limbs(out)
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> Uint {
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        if limb_shift >= self.limbs.len() {
            return Uint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            let src = &self.limbs[limb_shift..];
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        Uint::from_limbs(out)
    }

    /// Quotient and remainder of `self / divisor` (Knuth Algorithm D).
    pub fn div_rem(&self, divisor: &Uint) -> Result<(Uint, Uint), CryptoError> {
        if divisor.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if self < divisor {
            return Ok((Uint::zero(), self.clone()));
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return Ok((q, Uint::from_u64(r)));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().expect("nonzero").leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        // Working copy of the dividend with one extra high limb.
        let mut un: Vec<u64> = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate q̂ from the top two dividend limbs and top divisor limb.
            let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = num / vn[n - 1] as u128;
            let mut rhat = num % vn[n - 1] as u128;
            while qhat >= 1u128 << 64
                || qhat * vn[n - 2] as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += vn[n - 1] as u128;
                if rhat >= 1u128 << 64 {
                    break;
                }
            }

            // Multiply and subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[i + j] as i128 - (p as u64) as i128 - borrow;
                un[i + j] = t as u64;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i128 - carry as i128 - borrow;
            un[j + n] = t as u64;

            if t < 0 {
                // q̂ was one too large: add the divisor back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[i + j] as u128 + vn[i] as u128 + carry;
                    un[i + j] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = (un[j + n] as u128).wrapping_add(carry) as u64;
            }
            q[j] = qhat as u64;
        }

        let quotient = Uint::from_limbs(q);
        let remainder = Uint::from_limbs(un[..n].to_vec()).shr(shift);
        Ok((quotient, remainder))
    }

    /// Quotient and remainder for a single-limb divisor.
    ///
    /// # Panics
    /// Panics if `d == 0`; single-limb callers check first.
    pub fn div_rem_u64(&self, d: u64) -> (Uint, u64) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Uint::from_limbs(out), rem as u64)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &Uint) -> Result<Uint, CryptoError> {
        Ok(self.div_rem(m)?.1)
    }

    /// Greatest common divisor (binary-free Euclid; division is cheap here).
    pub fn gcd(&self, other: &Uint) -> Uint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.div_rem(&b).expect("b nonzero").1;
            a = b;
            b = r;
        }
        a
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl PartialOrd for Uint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Uint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl std::fmt::Debug for Uint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Uint(0x{})", self.to_hex())
    }
}

impl std::fmt::Display for Uint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Decimal rendering via repeated division; fine for display purposes.
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10);
            digits.push(b'0' + r as u8);
            cur = q;
        }
        digits.reverse();
        write!(f, "{}", String::from_utf8(digits).expect("ascii digits"))
    }
}

impl From<u64> for Uint {
    fn from(v: u64) -> Self {
        Uint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Uint {
        Uint::from_u64(v)
    }

    #[test]
    fn zero_is_canonical() {
        assert!(Uint::zero().is_zero());
        assert_eq!(Uint::from_u64(0), Uint::zero());
        assert_eq!(Uint::from_limbs(vec![0, 0, 0]), Uint::zero());
        assert_eq!(Uint::zero().bit_len(), 0);
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(u(2).add(&u(3)), u(5));
        assert_eq!(u(5).sub(&u(3)), u(2));
        assert_eq!(u(7).mul(&u(6)), u(42));
        let (q, r) = u(43).div_rem(&u(6)).unwrap();
        assert_eq!((q, r), (u(7), u(1)));
    }

    #[test]
    fn carry_propagation() {
        let max = Uint::from_u64(u64::MAX);
        let sum = max.add(&Uint::one());
        assert_eq!(sum, Uint::from_u128(1u128 << 64));
        assert_eq!(sum.bit_len(), 65);
        let prod = max.mul(&max);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expect = Uint::from_hex("fffffffffffffffe0000000000000001").unwrap();
        assert_eq!(prod, expect);
    }

    #[test]
    fn subtraction_guards() {
        assert_eq!(u(3).checked_sub(&u(5)), None);
        assert_eq!(u(5).checked_sub(&u(5)), Some(Uint::zero()));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = u(3).sub(&u(5));
    }

    #[test]
    fn multi_limb_division_round_trip() {
        let a = Uint::from_hex("123456789abcdef0fedcba9876543210deadbeefcafebabe").unwrap();
        let b = Uint::from_hex("fedcba98765432100f").unwrap();
        let (q, r) = a.div_rem(&b).unwrap();
        assert!(r < b);
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn division_needs_addback_path() {
        // Crafted operands that historically trigger the Algorithm D
        // "add back" correction (divisor top limb just over half range).
        let a = Uint::from_hex("80000000000000000000000000000000000000000000000003").unwrap();
        let b = Uint::from_hex("800000000000000000000000000000000001").unwrap();
        let (q, r) = a.div_rem(&b).unwrap();
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn division_by_zero_is_error() {
        assert_eq!(u(1).div_rem(&Uint::zero()), Err(CryptoError::DivisionByZero));
    }

    #[test]
    fn byte_round_trip() {
        let v = Uint::from_hex("0102030405060708090a0b0c0d0e0f").unwrap();
        assert_eq!(Uint::from_be_bytes(&v.to_be_bytes()), v);
        assert_eq!(v.to_be_bytes()[0], 0x01);
        // Leading zero bytes are ignored on parse.
        let padded = v.to_be_bytes_padded(32).unwrap();
        assert_eq!(padded.len(), 32);
        assert_eq!(Uint::from_be_bytes(&padded), v);
    }

    #[test]
    fn padded_bytes_too_small() {
        let v = Uint::from_hex("ffffffffffffffffff").unwrap();
        assert_eq!(v.to_be_bytes_padded(8), None);
        assert!(v.to_be_bytes_padded(9).is_some());
    }

    #[test]
    fn hex_round_trip_odd_length() {
        let v = Uint::from_hex("abc").unwrap();
        assert_eq!(v, u(0xabc));
        assert_eq!(v.to_hex(), "abc");
        assert_eq!(Uint::from_hex("xyz"), None);
        assert_eq!(Uint::zero().to_hex(), "0");
    }

    #[test]
    fn shifts() {
        let v = Uint::from_hex("1f").unwrap();
        assert_eq!(v.shl(4), Uint::from_hex("1f0").unwrap());
        assert_eq!(v.shl(64).shr(64), v);
        assert_eq!(v.shl(67).shr(67), v);
        assert_eq!(v.shr(5), Uint::zero());
        assert_eq!(v.shr(4), Uint::one());
    }

    #[test]
    fn bits() {
        let v = Uint::from_hex("8000000000000001").unwrap();
        assert!(v.bit(0));
        assert!(v.bit(63));
        assert!(!v.bit(1));
        assert!(!v.bit(64));
        assert_eq!(v.bit_len(), 64);
    }

    #[test]
    fn ordering() {
        assert!(u(2) < u(3));
        assert!(Uint::from_u128(1 << 64) > Uint::from_u64(u64::MAX));
        assert_eq!(u(7).cmp(&u(7)), Ordering::Equal);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(u(12).gcd(&u(18)), u(6));
        assert_eq!(u(17).gcd(&u(13)), u(1));
        assert_eq!(u(0).gcd(&u(5)), u(5));
        assert_eq!(u(5).gcd(&u(0)), u(5));
    }

    #[test]
    fn decimal_display() {
        assert_eq!(Uint::zero().to_string(), "0");
        assert_eq!(u(1234567890).to_string(), "1234567890");
        let big = Uint::from_hex("de0b6b3a7640000").unwrap(); // 1e18
        assert_eq!(big.to_string(), "1000000000000000000");
    }

    #[test]
    fn mul_u64_matches_mul() {
        let a = Uint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        assert_eq!(a.mul_u64(12345), a.mul(&u(12345)));
        assert_eq!(a.mul_u64(0), Uint::zero());
    }

    #[test]
    fn div_rem_u64_matches_div_rem() {
        let a = Uint::from_hex("123456789abcdef00112233445566778899aabbccddeeff").unwrap();
        let (q1, r1) = a.div_rem_u64(97);
        let (q2, r2) = a.div_rem(&u(97)).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(Uint::from_u64(r1), r2);
    }
}
