//! Validation counting: which roots validate which Notary certificates.
//!
//! This is the machinery behind Table 3 ("number of certificates validated
//! by Mozilla and AOSP root stores"), Table 4 (dead-root fractions) and
//! Figure 3 (per-root validation counts). Every chain is validated by the
//! real [`tangled_x509::chain::ChainVerifier`] against the universe of
//! known roots; the per-root tallies are then cheap set lookups per store.

use crate::ecosystem::{study_time, Ecosystem, NotaryCert};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use tangled_exec::{fixed_shard_count, shard_range, ExecPool, StripedMap};
use tangled_pki::store::RootStore;
use tangled_x509::{CertIdentity, ChainKey, ChainOptions, ChainVerifier};

/// Per-root validation tallies over the Notary population.
pub struct ValidationIndex {
    per_root: HashMap<CertIdentity, u32>,
    per_root_sessions: HashMap<CertIdentity, u64>,
    validated_total: u32,
    total_non_expired: u32,
    total: u32,
    total_sessions: u64,
}

impl ValidationIndex {
    /// Validate every non-expired Notary certificate against the universe
    /// of roots and tally by anchoring root identity.
    ///
    /// The population is cut into a fixed number of contiguous shards
    /// (independent of thread count) and the shards are validated on the
    /// ambient [`ExecPool`], sharing a lock-striped issuer→anchor memo: all
    /// leaves of one CA anchor identically ([`ChainKey`] is the same memo
    /// key the trustd serving cache uses), so whichever shard reaches an
    /// issuer class first pays for the chain build and every other shard
    /// replays the verdict. Anchoring is a pure function of the key, so the
    /// fill-order race is unobservable in results — tallies merge in shard
    /// order and the index is bit-identical at any thread count.
    pub fn build(eco: &Ecosystem) -> ValidationIndex {
        Self::build_inner(eco, true, &ExecPool::current()).0
    }

    /// As [`ValidationIndex::build`] but without the issuer memoisation —
    /// every chain runs full path construction and signature verification.
    pub fn build_unmemoised(eco: &Ecosystem) -> ValidationIndex {
        Self::build_inner(eco, false, &ExecPool::current()).0
    }

    /// As [`ValidationIndex::build`] but on an explicit pool — the
    /// determinism tests pin widths without touching process-global state.
    pub fn build_with_pool(eco: &Ecosystem, pool: &ExecPool) -> ValidationIndex {
        Self::build_inner(eco, true, pool).0
    }

    /// As [`ValidationIndex::build`], additionally returning the per-shard
    /// build latencies in microseconds (ascending shard order). `tangled
    /// stats` summarises these as p50/p99; the timings are observational
    /// and do not influence the index.
    pub fn build_with_latencies(eco: &Ecosystem) -> (ValidationIndex, Vec<u64>) {
        Self::build_inner(eco, true, &ExecPool::current())
    }

    fn build_inner(
        eco: &Ecosystem,
        memoise: bool,
        pool: &ExecPool,
    ) -> (ValidationIndex, Vec<u64>) {
        // Shard boundaries depend on the cert count alone, so the span and
        // its per-shard point events are width-invariant; only the timings
        // (registry histograms) vary run to run.
        let span = tangled_obs::trace::span_start(
            "notary.validate",
            eco.certs.len() as u64,
            0,
            &[("certs", serde_json::Value::from(eco.certs.len() as u64))],
        );
        let started = Instant::now();
        let mut verifier = ChainVerifier::new();
        for root in &eco.universe_roots {
            verifier.add_anchor(Arc::clone(root));
        }
        for inter in &eco.intermediates {
            verifier.add_intermediate(Arc::clone(inter));
        }
        let verifier = verifier;
        let opts = ChainOptions::at(study_time());

        let memo: StripedMap<ChainKey, Option<CertIdentity>> =
            StripedMap::new(tangled_exec::DEFAULT_STRIPES);

        let shards = fixed_shard_count(eco.certs.len());
        let ranges: Vec<_> = (0..shards)
            .map(|s| shard_range(eco.certs.len(), shards, s))
            .collect();
        let tallies = pool.par_map_indexed(&ranges, |_, range| {
            tally_shard(
                &eco.certs[range.clone()],
                &verifier,
                opts,
                memoise.then_some(&memo),
            )
        });

        // Merge in ascending shard order. Every field is an order-
        // insensitive sum over disjoint certificate ranges, so the result
        // is bit-identical to the single-pass sequential tally.
        let mut per_root: HashMap<CertIdentity, u32> = HashMap::new();
        let mut per_root_sessions: HashMap<CertIdentity, u64> = HashMap::new();
        let mut validated_total = 0u32;
        let mut total_non_expired = 0u32;
        let mut total_sessions = 0u64;
        let mut latencies = Vec::with_capacity(tallies.len());
        for (s, t) in tallies.into_iter().enumerate() {
            for (id, n) in t.per_root {
                *per_root.entry(id).or_default() += n;
            }
            for (id, n) in t.per_root_sessions {
                *per_root_sessions.entry(id).or_default() += n;
            }
            validated_total += t.validated_total;
            total_non_expired += t.total_non_expired;
            total_sessions += t.total_sessions;
            // Emitted from the index-ordered merge, never from the shard
            // closure: per-shard counts are width-invariant, per-shard
            // latency is not — the latter goes to the registry only.
            tangled_obs::trace::point(
                "notary.validate",
                span,
                &[
                    ("shard", serde_json::Value::from(s as u64)),
                    ("validated", serde_json::Value::from(t.validated_total)),
                ],
            );
            tangled_obs::registry::observe("notary.validate.shard_us", t.micros);
            latencies.push(t.micros);
        }

        let index = ValidationIndex {
            per_root,
            per_root_sessions,
            validated_total,
            total_non_expired,
            total: eco.certs.len() as u32,
            total_sessions,
        };
        tangled_obs::registry::add("notary.validate.runs", 1);
        tangled_obs::registry::observe(
            "notary.validate.us",
            started.elapsed().as_micros() as u64,
        );
        tangled_obs::trace::span_end(
            "notary.validate",
            span,
            &[
                ("validated", serde_json::Value::from(index.validated_total)),
                (
                    "non_expired",
                    serde_json::Value::from(index.total_non_expired),
                ),
            ],
        );
        (index, latencies)
    }

    /// Certificates a single root (by identity) validates.
    pub fn root_count(&self, id: &CertIdentity) -> u32 {
        self.per_root.get(id).copied().unwrap_or(0)
    }

    /// SSL session volume anchored by a single root (traffic-weighted
    /// counterpart of [`ValidationIndex::root_count`] — the Notary's
    /// 66-billion-session view, scaled).
    pub fn root_sessions(&self, id: &CertIdentity) -> u64 {
        self.per_root_sessions.get(id).copied().unwrap_or(0)
    }

    /// Session volume anchored by any TLS-trusted root of a store.
    pub fn store_sessions(&self, store: &RootStore) -> u64 {
        store
            .iter_enabled()
            .filter(|a| a.trusts_tls())
            .map(|a| self.root_sessions(&a.identity()))
            .sum()
    }

    /// Total session volume over the non-expired population.
    pub fn total_sessions(&self) -> u64 {
        self.total_sessions
    }

    /// Certificates validated by *some* root of the given store
    /// (each certificate counted once — Table 3's metric). Only anchors
    /// that are enabled *and* trusted for TLS server verification count,
    /// so both Android's disable switch and Mozilla-style trust scoping
    /// affect the result.
    pub fn store_count(&self, store: &RootStore) -> u32 {
        store
            .iter_enabled()
            .filter(|a| a.trusts_tls())
            .map(|a| self.root_count(&a.identity()))
            .sum()
    }

    /// Validation counts for an arbitrary set of root identities.
    pub fn counts_for<'a>(
        &self,
        ids: impl IntoIterator<Item = &'a CertIdentity>,
    ) -> Vec<u32> {
        ids.into_iter().map(|id| self.root_count(id)).collect()
    }

    /// Fraction of the given roots that validate zero certificates
    /// (Table 4's right-hand column).
    pub fn dead_fraction<'a>(
        &self,
        ids: impl IntoIterator<Item = &'a CertIdentity>,
    ) -> f64 {
        let counts = self.counts_for(ids);
        if counts.is_empty() {
            return 0.0;
        }
        counts.iter().filter(|&&c| c == 0).count() as f64 / counts.len() as f64
    }

    /// Certificates validated by at least one universe root.
    pub fn validated_total(&self) -> u32 {
        self.validated_total
    }

    /// Non-expired certificates considered.
    pub fn total_non_expired(&self) -> u32 {
        self.total_non_expired
    }

    /// All certificates in the ecosystem (expired included).
    pub fn total(&self) -> u32 {
        self.total
    }

    /// The raw per-root validation tallies (Figure 3's data).
    pub fn per_root(&self) -> &HashMap<CertIdentity, u32> {
        &self.per_root
    }

    /// The raw per-root session-volume tallies.
    pub fn per_root_sessions(&self) -> &HashMap<CertIdentity, u64> {
        &self.per_root_sessions
    }

    /// Reassemble an index from persisted tallies — the inverse of the
    /// accessors above, used by the snapshot reader so a warm start never
    /// re-validates the ecosystem.
    pub fn from_parts(
        per_root: HashMap<CertIdentity, u32>,
        per_root_sessions: HashMap<CertIdentity, u64>,
        validated_total: u32,
        total_non_expired: u32,
        total: u32,
        total_sessions: u64,
    ) -> ValidationIndex {
        ValidationIndex {
            per_root,
            per_root_sessions,
            validated_total,
            total_non_expired,
            total,
            total_sessions,
        }
    }
}

/// Partial tallies over one contiguous shard of the population.
#[derive(Default)]
struct ShardTally {
    per_root: HashMap<CertIdentity, u32>,
    per_root_sessions: HashMap<CertIdentity, u64>,
    validated_total: u32,
    total_non_expired: u32,
    total_sessions: u64,
    micros: u64,
}

fn tally_shard(
    certs: &[NotaryCert],
    verifier: &ChainVerifier,
    opts: ChainOptions,
    memo: Option<&StripedMap<ChainKey, Option<CertIdentity>>>,
) -> ShardTally {
    let started = Instant::now();
    let mut tally = ShardTally::default();
    for cert in certs {
        let leaf = cert.leaf();
        if !leaf.is_valid_at(study_time()) {
            continue;
        }
        tally.total_non_expired += 1;
        tally.total_sessions += cert.sessions;

        let anchor = match memo {
            Some(memo) => memo.get_or_insert_with(
                ChainKey::issuer_class(leaf, cert.chain.len()),
                || {
                    verifier
                        .verify(leaf, opts)
                        .ok()
                        .map(|chain| chain.anchor().identity())
                },
            ),
            None => verifier
                .verify(leaf, opts)
                .ok()
                .map(|chain| chain.anchor().identity()),
        };

        if let Some(anchor_id) = anchor {
            *tally.per_root.entry(anchor_id.clone()).or_default() += 1;
            *tally.per_root_sessions.entry(anchor_id).or_default() += cert.sessions;
            tally.validated_total += 1;
        }
    }
    tally.micros = started.elapsed().as_micros() as u64;
    tally
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecosystem::EcosystemSpec;
    use tangled_pki::stores::ReferenceStore;

    fn index() -> (Ecosystem, ValidationIndex) {
        // Scale 0.25 is the smallest at which per-entry rounding keeps the
        // calibrated Table 3 deltas strict (see issuance_plan docs).
        let eco = Ecosystem::generate(&EcosystemSpec::scaled(0.25));
        let idx = ValidationIndex::build(&eco);
        (eco, idx)
    }

    #[test]
    fn table3_ordering_holds() {
        let (_eco, idx) = index();
        let count = |rs: ReferenceStore| idx.store_count(&rs.cached());
        let mozilla = count(ReferenceStore::Mozilla);
        let a41 = count(ReferenceStore::Aosp41);
        let a42 = count(ReferenceStore::Aosp42);
        let a43 = count(ReferenceStore::Aosp43);
        let a44 = count(ReferenceStore::Aosp44);
        let ios = count(ReferenceStore::Ios7);
        // Paper Table 3: Mozilla 744,069 < AOSP 4.1 = 4.2 = 744,350
        // ≤ 4.3 = 744,384 ≤ 4.4 = 744,398 < iOS7 745,736.
        assert!(mozilla < a41, "Mozilla {mozilla} < AOSP4.1 {a41}");
        assert_eq!(a41, a42, "AOSP 4.1 and 4.2 validate identically");
        assert!(a42 < a43);
        assert!(a43 < a44);
        assert!(a44 < ios, "AOSP4.4 {a44} < iOS7 {ios}");
        // Near-equality: total spread below 5 %.
        let spread = (ios - mozilla) as f64 / mozilla as f64;
        assert!(spread < 0.05, "spread {spread:.3}");
    }

    #[test]
    fn coverage_near_three_quarters() {
        let (_eco, idx) = index();
        let frac = idx.validated_total() as f64 / idx.total_non_expired() as f64;
        // Paper: ~744k of ~1M non-expired ≈ 74 %.
        assert!((0.6..0.9).contains(&frac), "coverage {frac:.3}");
    }

    #[test]
    fn sharded_build_is_width_invariant() {
        let eco = Ecosystem::generate(&EcosystemSpec::scaled(0.02));
        let base = ValidationIndex::build_with_pool(&eco, &ExecPool::with_threads(1));
        for width in [2, 3, 8] {
            let idx = ValidationIndex::build_with_pool(&eco, &ExecPool::with_threads(width));
            assert_eq!(idx.validated_total(), base.validated_total(), "width {width}");
            assert_eq!(idx.total_non_expired(), base.total_non_expired());
            assert_eq!(idx.total_sessions(), base.total_sessions());
            for rs in ReferenceStore::ALL {
                let store = rs.cached();
                assert_eq!(idx.store_count(&store), base.store_count(&store));
                assert_eq!(idx.store_sessions(&store), base.store_sessions(&store));
            }
        }
    }

    #[test]
    fn shard_latencies_cover_every_shard() {
        let eco = Ecosystem::generate(&EcosystemSpec::scaled(0.02));
        let (idx, latencies) = ValidationIndex::build_with_latencies(&eco);
        assert_eq!(latencies.len(), fixed_shard_count(eco.certs.len()));
        assert!(idx.validated_total() > 0);
    }

    #[test]
    fn memoised_matches_unmemoised() {
        let eco = Ecosystem::generate(&EcosystemSpec::scaled(0.02));
        let fast = ValidationIndex::build(&eco);
        let slow = ValidationIndex::build_unmemoised(&eco);
        assert_eq!(fast.validated_total(), slow.validated_total());
        for rs in ReferenceStore::ALL {
            let store = rs.cached();
            assert_eq!(fast.store_count(&store), slow.store_count(&store));
        }
    }

    #[test]
    fn dead_fractions_match_table4_shape() {
        let (_eco, idx) = index();
        let dead = |rs: ReferenceStore| {
            let store = rs.cached();
            idx.dead_fraction(store.identities().iter())
        };
        let aosp44 = dead(ReferenceStore::Aosp44);
        let mozilla = dead(ReferenceStore::Mozilla);
        let ios = dead(ReferenceStore::Ios7);
        // Paper Table 4: AOSP 4.4 → 23 %, Mozilla → 22 %, iOS 7 → 41 %.
        assert!((0.15..0.30).contains(&aosp44), "AOSP4.4 dead {aosp44:.3}");
        assert!((0.15..0.30).contains(&mozilla), "Mozilla dead {mozilla:.3}");
        assert!((0.32..0.50).contains(&ios), "iOS7 dead {ios:.3}");
        assert!(ios > aosp44, "iOS7 carries more dead weight");
    }

    #[test]
    fn disabled_anchor_stops_counting() {
        let (_eco, idx) = index();
        let store = ReferenceStore::Aosp44.cached();
        let mut modified = store.cloned_as("disabled-top");
        // Disable the busiest root; the store count must drop by its tally.
        let busiest = modified
            .identities()
            .iter()
            .max_by_key(|id| idx.root_count(id))
            .cloned()
            .unwrap();
        let full = idx.store_count(&modified);
        modified.disable(&busiest);
        let reduced = idx.store_count(&modified);
        assert_eq!(full - reduced, idx.root_count(&busiest));
        assert!(idx.root_count(&busiest) > 0);
    }

    #[test]
    fn empty_store_validates_nothing() {
        let (_eco, idx) = index();
        let empty = RootStore::new("empty");
        assert_eq!(idx.store_count(&empty), 0);
        assert_eq!(idx.dead_fraction(empty.identities().iter()), 0.0);
    }
}
