//! Crash-recovery regression: a trustd restarted from snapshot + journal
//! must be indistinguishable from the server that never went down —
//! same profile epochs, byte-identical verdicts — including after a torn
//! final journal record.

use tangled_mass::analysis::Study;
use tangled_mass::intercept::origin::OriginServers;
use tangled_mass::intercept::policy::Target;
use tangled_mass::pki::stores::ReferenceStore;
use tangled_mass::snap::{write_study, Journal};
use tangled_mass::trustd::replay::canonical;
use tangled_mass::trustd::wire::{Request, Response};
use tangled_mass::trustd::{index_from_snapshot, replay_journal, TrustService};

fn temp_path(tag: &str) -> String {
    let dir = std::env::temp_dir().join("tangled-restart-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn origin_chain(host: &str) -> Vec<Vec<u8>> {
    let origin = OriginServers::for_table6();
    let t = Target::parse(host).expect("valid target");
    origin
        .chain(&t)
        .expect("table 6 target")
        .iter()
        .map(|c| c.to_der().to_vec())
        .collect()
}

/// The probe requests both servers answer; chains repeat so the memo
/// cache participates on both sides.
fn probe_requests() -> Vec<Request> {
    let mut reqs = Vec::new();
    for profile in ["AOSP 4.4", "AOSP 4.1", "Mozilla", "device"] {
        for host in ["gmail.com:443", "www.chase.com:443", "gmail.com:443"] {
            reqs.push(Request::Validate {
                profile: profile.into(),
                chain: origin_chain(host),
            });
        }
    }
    reqs
}

fn verdicts(svc: &TrustService) -> Vec<String> {
    probe_requests()
        .iter()
        .map(|r| canonical(&svc.handle(r)))
        .collect()
}

fn swap_epoch(resp: &Response) -> u64 {
    match resp {
        Response::Swap { epoch, .. } => *epoch,
        other => panic!("expected a swap response, got {other:?}"),
    }
}

#[test]
fn restart_from_snapshot_and_journal_is_indistinguishable() {
    let snap_path = temp_path("study.snap");
    let journal_path = temp_path("swaps.jrn");
    let _ = std::fs::remove_file(&journal_path);

    // A study snapshot carries the reference profiles trustd warms from.
    let study = Study::new(0.05, 0.02);
    write_study(&study, &snap_path).expect("snapshot writes");

    // Server A: warm start, journal attached, then two swaps.
    let index = index_from_snapshot(&snap_path).expect("warm start");
    assert_eq!(index.current_epoch(), 6, "six reference preloads");
    let a = TrustService::with_index(index, 256);
    let (journal, records, recovery) = Journal::open(&journal_path).expect("fresh journal");
    assert!(records.is_empty() && !recovery.truncated);
    a.attach_journal(journal);

    // Swap 1: overlay AOSP 4.4 with the Mozilla store. Swap 2: install a
    // trimmed store under a brand-new profile name.
    let mozilla = ReferenceStore::Mozilla.cached();
    let e1 = swap_epoch(&a.handle(&Request::Swap {
        profile: "AOSP 4.4".into(),
        snapshot: mozilla.snapshot(),
    }));
    let mut trimmed = ReferenceStore::Aosp44.cached().cloned_as("trimmed");
    let drop_id = trimmed.identities()[0].clone();
    trimmed.remove(&drop_id);
    let e2 = swap_epoch(&a.handle(&Request::Swap {
        profile: "device".into(),
        snapshot: trimmed.snapshot(),
    }));
    assert_eq!((e1, e2), (7, 8), "swap responses report the post-bump epoch");
    let live = verdicts(&a);

    // Server B: fresh process — same snapshot, journal replayed.
    let index = index_from_snapshot(&snap_path).expect("warm start");
    let (journal, records, recovery) = Journal::open(&journal_path).expect("journal reopens");
    assert!(!recovery.truncated);
    assert_eq!(
        records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
        vec![7, 8],
        "journal frames carry the epochs the swaps reported"
    );
    replay_journal(&index, &records).expect("replay");
    let b = TrustService::with_index(index, 256);
    b.attach_journal(journal);

    assert_eq!(b.index().current_epoch(), a.index().current_epoch());
    for profile in ["AOSP 4.4", "device", "Mozilla"] {
        assert_eq!(
            b.index().profile(profile).map(|p| p.epoch),
            a.index().profile(profile).map(|p| p.epoch),
            "epoch of '{profile}' diverged across restart"
        );
    }
    assert_eq!(verdicts(&b), live, "restarted server serves different verdicts");

    // The restarted server keeps journalling: one more swap lands on the
    // next epoch in both the response and the log.
    let e3 = swap_epoch(&b.handle(&Request::Swap {
        profile: "device".into(),
        snapshot: mozilla.snapshot(),
    }));
    assert_eq!(e3, 9);
    let (_, records, _) = Journal::open(&journal_path).expect("journal reopens");
    assert_eq!(records.last().map(|r| r.epoch), Some(9));

    std::fs::remove_file(&snap_path).unwrap();
    std::fs::remove_file(&journal_path).unwrap();
}

#[test]
fn torn_final_record_recovers_to_the_previous_swap() {
    let snap_path = temp_path("torn-study.snap");
    let journal_path = temp_path("torn-swaps.jrn");
    let _ = std::fs::remove_file(&journal_path);

    let study = Study::new(0.05, 0.02);
    write_study(&study, &snap_path).expect("snapshot writes");

    // Server A performs two swaps, then "crashes" mid-append: we simulate
    // the torn write by chopping bytes off the second frame.
    let a = TrustService::with_index(index_from_snapshot(&snap_path).expect("warm"), 256);
    let (journal, _, _) = Journal::open(&journal_path).expect("fresh journal");
    a.attach_journal(journal);
    let mozilla = ReferenceStore::Mozilla.cached();
    a.handle(&Request::Swap {
        profile: "AOSP 4.4".into(),
        snapshot: mozilla.snapshot(),
    });
    // Verdicts as of epoch 7 — what a restart must reproduce.
    let after_first = verdicts(&a);
    a.handle(&Request::Swap {
        profile: "device".into(),
        snapshot: ReferenceStore::Ios7.cached().snapshot(),
    });
    drop(a);
    let data = std::fs::read(&journal_path).unwrap();
    std::fs::write(&journal_path, &data[..data.len() - 33]).unwrap();

    // Restart: the torn frame is truncated, the first swap survives.
    let index = index_from_snapshot(&snap_path).expect("warm start");
    let (journal, records, recovery) = Journal::open(&journal_path).expect("recovery");
    assert!(recovery.truncated, "the torn tail must be detected");
    assert_eq!(records.len(), 1, "only the fsync'd swap survives");
    replay_journal(&index, &records).expect("replay");
    let b = TrustService::with_index(index, 256);
    b.attach_journal(journal);

    assert_eq!(b.index().current_epoch(), 7);
    assert!(
        b.index().profile("device").is_none(),
        "the torn swap never happened"
    );
    assert_eq!(
        verdicts(&b),
        after_first,
        "recovered server must match the epoch-7 state"
    );

    std::fs::remove_file(&snap_path).unwrap();
    std::fs::remove_file(&journal_path).unwrap();
}
