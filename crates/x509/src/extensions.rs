//! X.509 v3 extensions (RFC 5280 §4.2).
//!
//! The paper's trust analysis hinges on a handful of extensions:
//! `basicConstraints` (is this a CA, and how deep may it issue),
//! `keyUsage`/`extKeyUsage` (what operations the certificate may perform —
//! Android famously ignores these scopes for root-store members, which §2 of
//! the paper calls out), and the key identifiers used for chain building.

use tangled_asn1::{Asn1Error, DerReader, DerWriter, Oid, Tag};

/// `BasicConstraints ::= SEQUENCE { cA BOOLEAN DEFAULT FALSE,
/// pathLenConstraint INTEGER OPTIONAL }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BasicConstraints {
    /// Whether the subject is a CA.
    pub ca: bool,
    /// Maximum number of intermediate CAs below this one.
    pub path_len: Option<u32>,
}

/// KeyUsage bits (RFC 5280 §4.2.1.3). Only the bits this workspace
/// exercises are named; the rest round-trip through `raw`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeyUsage {
    /// digitalSignature (bit 0).
    pub digital_signature: bool,
    /// keyEncipherment (bit 2).
    pub key_encipherment: bool,
    /// keyCertSign (bit 5).
    pub key_cert_sign: bool,
    /// cRLSign (bit 6).
    pub crl_sign: bool,
}

impl KeyUsage {
    /// Usage bits typical for a CA certificate.
    pub fn ca() -> Self {
        KeyUsage {
            key_cert_sign: true,
            crl_sign: true,
            ..Default::default()
        }
    }

    /// Usage bits typical for a TLS server leaf.
    pub fn tls_server() -> Self {
        KeyUsage {
            digital_signature: true,
            key_encipherment: true,
            ..Default::default()
        }
    }

    fn to_bits(self) -> [bool; 9] {
        let mut bits = [false; 9];
        bits[0] = self.digital_signature;
        bits[2] = self.key_encipherment;
        bits[5] = self.key_cert_sign;
        bits[6] = self.crl_sign;
        bits
    }

    fn from_bytes(unused: u8, bytes: &[u8]) -> Self {
        let bit = |i: usize| -> bool {
            let byte = i / 8;
            if byte >= bytes.len() {
                return false;
            }
            // The final byte's low `unused` bits are padding.
            if byte == bytes.len() - 1 && (7 - i % 8) < unused as usize {
                return false;
            }
            bytes[byte] & (0x80 >> (i % 8)) != 0
        };
        KeyUsage {
            digital_signature: bit(0),
            key_encipherment: bit(2),
            key_cert_sign: bit(5),
            crl_sign: bit(6),
        }
    }
}

/// Extended key usage purposes relevant to the paper's Table 4/§5 analysis
/// (TLS server auth vs code signing vs email — Android does not scope
/// root-store members by these, Mozilla does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyPurpose {
    /// id-kp-serverAuth.
    ServerAuth,
    /// id-kp-clientAuth.
    ClientAuth,
    /// id-kp-codeSigning.
    CodeSigning,
    /// id-kp-emailProtection.
    EmailProtection,
    /// Any purpose not otherwise modelled.
    Other(u64),
}

impl KeyPurpose {
    fn to_oid(self) -> Oid {
        match self {
            KeyPurpose::ServerAuth => Oid::kp_server_auth(),
            KeyPurpose::ClientAuth => Oid::kp_client_auth(),
            KeyPurpose::CodeSigning => Oid::kp_code_signing(),
            KeyPurpose::EmailProtection => Oid::kp_email_protection(),
            // Private arc for synthetic purposes (FOTA, SUPL, …).
            KeyPurpose::Other(n) => Oid::new(&[1, 3, 6, 1, 4, 1, 99999, 3, n]),
        }
    }

    fn from_oid(oid: &Oid) -> KeyPurpose {
        if *oid == Oid::kp_server_auth() {
            KeyPurpose::ServerAuth
        } else if *oid == Oid::kp_client_auth() {
            KeyPurpose::ClientAuth
        } else if *oid == Oid::kp_code_signing() {
            KeyPurpose::CodeSigning
        } else if *oid == Oid::kp_email_protection() {
            KeyPurpose::EmailProtection
        } else {
            let arcs = oid.arcs();
            KeyPurpose::Other(arcs.last().copied().unwrap_or(0))
        }
    }
}

/// A decoded extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Extension {
    /// id-ce-basicConstraints.
    BasicConstraints(BasicConstraints),
    /// id-ce-keyUsage.
    KeyUsage(KeyUsage),
    /// id-ce-extKeyUsage.
    ExtendedKeyUsage(Vec<KeyPurpose>),
    /// id-ce-subjectKeyIdentifier (opaque key hash).
    SubjectKeyIdentifier(Vec<u8>),
    /// id-ce-authorityKeyIdentifier (keyIdentifier form only).
    AuthorityKeyIdentifier(Vec<u8>),
    /// id-ce-subjectAltName restricted to dNSName entries.
    SubjectAltName(Vec<String>),
    /// Any extension this workspace does not interpret; preserved verbatim.
    Unknown {
        /// Extension OID.
        oid: Oid,
        /// Criticality flag.
        critical: bool,
        /// Raw extnValue OCTET STRING contents.
        value: Vec<u8>,
    },
}

impl Extension {
    /// The extension's OID.
    pub fn oid(&self) -> Oid {
        match self {
            Extension::BasicConstraints(_) => Oid::basic_constraints(),
            Extension::KeyUsage(_) => Oid::key_usage(),
            Extension::ExtendedKeyUsage(_) => Oid::ext_key_usage(),
            Extension::SubjectKeyIdentifier(_) => Oid::subject_key_identifier(),
            Extension::AuthorityKeyIdentifier(_) => Oid::authority_key_identifier(),
            Extension::SubjectAltName(_) => Oid::subject_alt_name(),
            Extension::Unknown { oid, .. } => oid.clone(),
        }
    }

    /// Whether the extension is emitted with the critical flag.
    fn critical(&self) -> bool {
        match self {
            // RFC 5280: basicConstraints and keyUsage SHOULD/MUST be critical
            // in CA certificates; we always mark them critical.
            Extension::BasicConstraints(_) | Extension::KeyUsage(_) => true,
            Extension::Unknown { critical, .. } => *critical,
            _ => false,
        }
    }

    fn write_value(&self, w: &mut DerWriter) {
        match self {
            Extension::BasicConstraints(bc) => w.sequence(|w| {
                if bc.ca {
                    w.boolean(true); // DEFAULT FALSE is omitted when false
                }
                if let Some(len) = bc.path_len {
                    w.integer_u64(len as u64);
                }
            }),
            Extension::KeyUsage(ku) => w.bit_string_named(&ku.to_bits()),
            Extension::ExtendedKeyUsage(purposes) => w.sequence(|w| {
                for p in purposes {
                    w.oid(&p.to_oid());
                }
            }),
            Extension::SubjectKeyIdentifier(id) => w.octet_string(id),
            Extension::AuthorityKeyIdentifier(id) => w.sequence(|w| {
                // keyIdentifier [0] IMPLICIT OCTET STRING
                w.tlv(Tag::context_primitive(0), id);
            }),
            Extension::SubjectAltName(names) => w.sequence(|w| {
                for name in names {
                    // dNSName [2] IMPLICIT IA5String
                    w.tlv(Tag::context_primitive(2), name.as_bytes());
                }
            }),
            Extension::Unknown { value, .. } => w.raw(value),
        }
    }

    /// Write the full `Extension` SEQUENCE (oid, critical, OCTET STRING).
    pub fn write_der(&self, w: &mut DerWriter) {
        w.sequence(|w| {
            w.oid(&self.oid());
            if self.critical() {
                w.boolean(true);
            }
            let mut inner = DerWriter::new();
            self.write_value(&mut inner);
            w.octet_string(&inner.into_bytes());
        });
    }

    /// Parse one `Extension` SEQUENCE from a reader.
    pub fn read_der(r: &mut DerReader<'_>) -> Result<Extension, Asn1Error> {
        let mut ext = r.read_sequence()?;
        let oid = ext.read_oid()?;
        let critical = if ext.peek_tag().ok() == Some(Tag::BOOLEAN) {
            ext.read_boolean()?
        } else {
            false
        };
        let value = ext.read_octet_string()?;
        ext.finish()?;

        let parsed = if oid == Oid::basic_constraints() {
            let mut r = DerReader::new(value);
            let mut seq = r.read_sequence()?;
            let ca = if seq.peek_tag().ok() == Some(Tag::BOOLEAN) {
                seq.read_boolean()?
            } else {
                false
            };
            let path_len = if !seq.is_at_end() {
                Some(seq.read_integer_u64()? as u32)
            } else {
                None
            };
            seq.finish()?;
            r.finish()?;
            Extension::BasicConstraints(BasicConstraints { ca, path_len })
        } else if oid == Oid::key_usage() {
            let mut r = DerReader::new(value);
            let (unused, bytes) = r.read_bit_string()?;
            r.finish()?;
            Extension::KeyUsage(KeyUsage::from_bytes(unused, bytes))
        } else if oid == Oid::ext_key_usage() {
            let mut r = DerReader::new(value);
            let mut seq = r.read_sequence()?;
            let mut purposes = Vec::new();
            while !seq.is_at_end() {
                purposes.push(KeyPurpose::from_oid(&seq.read_oid()?));
            }
            r.finish()?;
            Extension::ExtendedKeyUsage(purposes)
        } else if oid == Oid::subject_key_identifier() {
            let mut r = DerReader::new(value);
            let id = r.read_octet_string()?.to_vec();
            r.finish()?;
            Extension::SubjectKeyIdentifier(id)
        } else if oid == Oid::authority_key_identifier() {
            let mut r = DerReader::new(value);
            let mut seq = r.read_sequence()?;
            let mut key_id = Vec::new();
            // Only the [0] keyIdentifier form is interpreted; issuer/serial
            // forms are skipped.
            while !seq.is_at_end() {
                let (tag, content) = seq.read_tlv()?;
                if tag == Tag::context_primitive(0) {
                    key_id = content.to_vec();
                }
            }
            r.finish()?;
            Extension::AuthorityKeyIdentifier(key_id)
        } else if oid == Oid::subject_alt_name() {
            let mut r = DerReader::new(value);
            let mut seq = r.read_sequence()?;
            let mut names = Vec::new();
            while !seq.is_at_end() {
                let (tag, content) = seq.read_tlv()?;
                if tag == Tag::context_primitive(2) {
                    let s = std::str::from_utf8(content)
                        .map_err(|_| Asn1Error::BadValue("non-UTF8 dNSName"))?;
                    names.push(s.to_owned());
                }
                // Other GeneralName forms are tolerated and skipped.
            }
            r.finish()?;
            Extension::SubjectAltName(names)
        } else {
            Extension::Unknown {
                oid,
                critical,
                value: value.to_vec(),
            }
        };
        Ok(parsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(ext: &Extension) -> Extension {
        let mut w = DerWriter::new();
        ext.write_der(&mut w);
        let bytes = w.into_bytes();
        let mut r = DerReader::new(&bytes);
        let parsed = Extension::read_der(&mut r).unwrap();
        r.finish().unwrap();
        parsed
    }

    #[test]
    fn basic_constraints_round_trip() {
        for bc in [
            BasicConstraints { ca: true, path_len: None },
            BasicConstraints { ca: true, path_len: Some(0) },
            BasicConstraints { ca: true, path_len: Some(3) },
            BasicConstraints { ca: false, path_len: None },
        ] {
            assert_eq!(round_trip(&Extension::BasicConstraints(bc)), Extension::BasicConstraints(bc));
        }
    }

    #[test]
    fn basic_constraints_default_false_omitted() {
        // DER requires omitting a BOOLEAN equal to its DEFAULT.
        let mut w = DerWriter::new();
        Extension::BasicConstraints(BasicConstraints::default()).write_der(&mut w);
        let bytes = w.into_bytes();
        // The inner value must be an empty SEQUENCE: 30 00.
        assert!(bytes.windows(2).any(|w| w == [0x30, 0x00]));
    }

    #[test]
    fn key_usage_round_trip() {
        for ku in [KeyUsage::ca(), KeyUsage::tls_server(), KeyUsage::default()] {
            assert_eq!(round_trip(&Extension::KeyUsage(ku)), Extension::KeyUsage(ku));
        }
    }

    #[test]
    fn key_usage_bit_positions() {
        // keyCertSign = bit 5 → byte 0x04 with 2 unused bits.
        let ku = KeyUsage { key_cert_sign: true, ..Default::default() };
        let mut w = DerWriter::new();
        Extension::KeyUsage(ku).write_der(&mut w);
        let bytes = w.into_bytes();
        assert!(bytes.windows(4).any(|w| w == [0x03, 0x02, 0x02, 0x04]));
    }

    #[test]
    fn eku_round_trip() {
        let ext = Extension::ExtendedKeyUsage(vec![
            KeyPurpose::ServerAuth,
            KeyPurpose::ClientAuth,
            KeyPurpose::CodeSigning,
            KeyPurpose::EmailProtection,
            KeyPurpose::Other(7),
        ]);
        assert_eq!(round_trip(&ext), ext);
    }

    #[test]
    fn key_identifier_round_trips() {
        let ski = Extension::SubjectKeyIdentifier(vec![1, 2, 3, 4]);
        assert_eq!(round_trip(&ski), ski);
        let aki = Extension::AuthorityKeyIdentifier(vec![9, 8, 7]);
        assert_eq!(round_trip(&aki), aki);
    }

    #[test]
    fn san_round_trip() {
        let ext = Extension::SubjectAltName(vec![
            "www.bankofamerica.com".into(),
            "mail.google.com".into(),
        ]);
        assert_eq!(round_trip(&ext), ext);
    }

    #[test]
    fn unknown_extension_preserved() {
        let ext = Extension::Unknown {
            oid: Oid::new(&[1, 3, 6, 1, 4, 1, 4444, 1]),
            critical: true,
            value: vec![0x04, 0x02, 0xaa, 0xbb], // arbitrary DER payload
        };
        assert_eq!(round_trip(&ext), ext);
    }

    #[test]
    fn criticality_flags() {
        // basicConstraints critical, SAN not.
        let mut w = DerWriter::new();
        Extension::BasicConstraints(BasicConstraints { ca: true, path_len: None }).write_der(&mut w);
        assert!(w.into_bytes().windows(3).any(|b| b == [0x01, 0x01, 0xff]));

        let mut w = DerWriter::new();
        Extension::SubjectAltName(vec!["a.example".into()]).write_der(&mut w);
        assert!(!w.into_bytes().windows(3).any(|b| b == [0x01, 0x01, 0xff]));
    }

    #[test]
    fn key_usage_unused_bits_respected() {
        // A BIT STRING of one byte with 4 unused bits: only bits 0-3 valid.
        // Bit 5 (keyCertSign) must therefore read as false even though the
        // raw byte pattern would set it.
        let ku = KeyUsage::from_bytes(4, &[0b0000_0100]);
        assert!(!ku.key_cert_sign);
        let ku = KeyUsage::from_bytes(2, &[0b0000_0100]);
        assert!(ku.key_cert_sign);
    }
}
