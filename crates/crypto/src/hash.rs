//! Shared non-cryptographic hashing primitives.
//!
//! Three subsystems independently grew the same two constructions: the
//! observability layer derives span IDs from an FNV-1a fold, the exec
//! layer splits seeds through a SplitMix64 finalizer, and the PKI extras
//! catalogue keys its synthetic draws on an FNV-1a string hash. This
//! module is the single home for both primitives; the snapshot container
//! also uses [`fnv1a`] for its section and journal-frame checksums, so
//! every checksum in the workspace is one implementation, not three.
//!
//! Neither function is cryptographic. They are deterministic, platform-
//! independent mixers for IDs, seeds and corruption *detection* (not
//! corruption *resistance*) — tamper-evidence comes from nothing in this
//! workspace.

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
/// The golden-ratio increment SplitMix64 advances by (2^64 / φ).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A streaming FNV-1a 64-bit hasher.
///
/// Feed byte slices in any chunking — the digest depends only on the
/// concatenated stream, so `update(a); update(b)` equals `update(ab)`.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Fold `bytes` into the running state.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// FNV-1a 64-bit digest of one byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// The SplitMix64 output finalizer: a bijective avalanche over one word.
///
/// This is the mixing half of [`crate::rng::SplitMix64`] without the
/// golden-ratio state advance; callers that want independent streams add
/// their own multiples of [`GOLDEN_GAMMA`] before mixing.
pub fn mix64(z: u64) -> u64 {
    let mut z = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.update(b"tangled").update(b" ").update(b"mass");
        assert_eq!(h.finish(), fnv1a(b"tangled mass"));
    }

    #[test]
    fn mix64_matches_splitmix_stream() {
        // Advancing the RNG by one gamma and finalizing is exactly what
        // SplitMix64::next_u64 does; the two must agree forever.
        let mut rng = crate::rng::SplitMix64::new(2014);
        for step in 1..=8u64 {
            let direct = mix64(2014u64.wrapping_add(GOLDEN_GAMMA.wrapping_mul(step)));
            assert_eq!(rng.next_u64(), direct, "step {step}");
        }
    }

    #[test]
    fn mix64_avalanches() {
        // 0 is the mixer's (only interesting) fixed point — callers always
        // pre-add a gamma multiple. Nearby nonzero inputs must scatter.
        assert_eq!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
        let (a, b) = (mix64(1), mix64(3));
        assert!((a ^ b).count_ones() > 16, "single-bit flip must avalanche");
    }
}
