//! Delta-chain safety and the golden materialisation identity.
//!
//! The identity is the load-bearing contract: materialising a
//! base+delta chain reassembles a container **byte-identical** to a
//! full snapshot of the same state, at any encoding pool width. The
//! corruption properties are the other half: any damage to a chain —
//! a flipped base byte, a reused-section checksum that no longer holds,
//! a truncated link — classifies as a [`SnapError`], never a panic and
//! never a silent wrong answer.

use proptest::prelude::*;
use std::sync::OnceLock;
use tangled_core::Study;
use tangled_exec::ExecPool;
use tangled_snap::container::assemble_tagged;
use tangled_snap::delta::encode_delta_meta;
use tangled_snap::{
    encode_delta, encode_study, encode_study_sections, file_id, materialize, DeltaMeta, SectionId,
    Snapshot,
};

const DELTA_EPOCH: u64 = 7;

/// One study, its full-snapshot bytes before and after a health-ledger
/// mutation, and the delta between them — built once (study synthesis
/// is the expensive part). The mutation touches exactly one section, so
/// the delta must reuse the other seven.
struct Fixture {
    study: Study,
    base: Vec<u8>,
    target: Vec<u8>,
    delta: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let pool = ExecPool::current();
        let mut study = Study::new(0.05, 0.02);
        let base = encode_study(&study, &pool);
        study.health.record_quarantined("delta-fixture", "synthetic");
        let target = encode_study(&study, &pool);
        let delta = encode_delta(&encode_study_sections(&study, &pool), &base, DELTA_EPOCH)
            .expect("delta encodes")
            .bytes;
        Fixture {
            study,
            base,
            target,
            delta,
        }
    })
}

#[test]
fn materialised_chain_is_byte_identical_to_the_full_snapshot() {
    let fx = fixture();
    let m = materialize(&[fx.base.clone(), fx.delta.clone()], DELTA_EPOCH).expect("materialises");
    assert_eq!(m.applied, 2);
    assert_eq!(m.epoch, DELTA_EPOCH);
    assert_eq!(
        m.bytes, fx.target,
        "materialised bytes must equal the full snapshot of the same state"
    );

    // Only the health section changed, so the delta must carry exactly
    // delta-meta + health and reuse everything else.
    let snap = Snapshot::parse(fx.delta.clone()).expect("delta parses");
    let tags: Vec<u8> = snap.entries().iter().map(|e| e.tag).collect();
    assert_eq!(
        tags,
        vec![SectionId::DeltaMeta.tag(), SectionId::Health.tag()],
        "a one-section mutation must dedup the other seven sections"
    );
}

#[test]
fn delta_encoding_and_materialisation_are_width_invariant() {
    let fx = fixture();
    for threads in [1usize, 2, 8] {
        let pool = ExecPool::with_threads(threads);
        let summary = encode_delta(
            &encode_study_sections(&fx.study, &pool),
            &fx.base,
            DELTA_EPOCH,
        )
        .expect("delta encodes");
        assert_eq!(
            summary.bytes, fx.delta,
            "delta bytes differ at pool width {threads}"
        );
        let m = materialize(&[fx.base.clone(), summary.bytes], DELTA_EPOCH).expect("materialises");
        assert_eq!(
            m.bytes, fx.target,
            "materialised bytes differ at pool width {threads}"
        );
    }
}

/// A hand-forged delta over the fixture base whose `reused` entry
/// records `checksum` for the corpus section.
fn forged_delta(base: &[u8], corpus_checksum: u64) -> Vec<u8> {
    let meta = encode_delta_meta(&DeltaMeta {
        base_id: file_id(base),
        epoch: DELTA_EPOCH,
        reused: vec![(SectionId::Corpus.tag(), corpus_checksum)],
    });
    assemble_tagged(&[(SectionId::DeltaMeta.tag(), meta.as_slice())])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flip one byte anywhere in the base file: materialisation must
    /// fail classified. Any flip changes the base's file id, so even a
    /// base that still reads cleanly section-by-section must be caught
    /// by the chain-link check as a base mismatch.
    #[test]
    fn damaged_base_never_materialises(pos in any::<u64>(), xor in 1u8..=255) {
        let fx = fixture();
        let mut damaged = fx.base.clone();
        let i = (pos % damaged.len() as u64) as usize;
        damaged[i] ^= xor;

        let reads_cleanly = Snapshot::parse(damaged.clone())
            .map(|s| s.entries().iter().all(|e| s.entry_body(e).is_ok()))
            .unwrap_or(false);
        let err = materialize(&[damaged, fx.delta.clone()], u64::MAX)
            .expect_err("a damaged base must not materialise");
        if reads_cleanly {
            prop_assert_eq!(err.label(), "base-mismatch");
        } else {
            prop_assert!(!err.label().is_empty());
        }
    }

    /// A reused-section checksum that does not match the accumulated
    /// state is the classified checksum mismatch — unless the random
    /// checksum happens to be the real one, in which case the reuse is
    /// legitimate and materialisation succeeds.
    #[test]
    fn reused_checksum_drift_is_classified(checksum in any::<u64>()) {
        let fx = fixture();
        let base_snap = Snapshot::parse(fx.base.clone()).expect("base parses");
        let real = base_snap
            .entries()
            .iter()
            .find(|e| e.tag == SectionId::Corpus.tag())
            .expect("corpus entry")
            .checksum;
        let delta = forged_delta(&fx.base, checksum);

        match materialize(&[fx.base.clone(), delta], u64::MAX) {
            Ok(_) => prop_assert_eq!(checksum, real, "a wrong checksum must not reuse"),
            Err(e) => {
                prop_assert_ne!(checksum, real);
                prop_assert_eq!(e.label(), "checksum-mismatch");
            }
        }
    }

    /// Truncate the delta link at an arbitrary byte: the chain never
    /// materialises and never panics — every cut is a classified error.
    #[test]
    fn truncated_delta_link_is_classified(len in any::<u64>()) {
        let fx = fixture();
        let cut = (len % fx.delta.len() as u64) as usize;
        let truncated = fx.delta[..cut].to_vec();
        let err = materialize(&[fx.base.clone(), truncated], u64::MAX)
            .expect_err("a strict prefix of a delta cannot apply");
        prop_assert!(!err.label().is_empty());
    }

    /// Flip one byte anywhere in the delta file: either the container
    /// layer catches it (parse/checksum), the delta-meta decode rejects
    /// it, or the chain-link check fails — never a panic, and a clean
    /// materialisation is only possible when the flip lands in the
    /// recorded base id or epoch in a way the checks themselves reject.
    #[test]
    fn damaged_delta_never_materialises_silently(pos in any::<u64>(), xor in 1u8..=255) {
        let fx = fixture();
        let mut damaged = fx.delta.clone();
        let i = (pos % damaged.len() as u64) as usize;
        damaged[i] ^= xor;
        let err = materialize(&[fx.base.clone(), damaged], u64::MAX)
            .expect_err("a damaged delta must not materialise");
        prop_assert!(!err.label().is_empty());
    }
}
