//! ECDF and progressive-coverage math for Figure 3.
//!
//! Figure 3 plots, per root-store category, the ECDF of the number of
//! Notary certificates each root validates, built by "cumulatively
//! considering" each of its certificates (starting with the certificates
//! that can validate the most additional certs)". This module supplies the
//! two curves: the plain ECDF over per-root counts (whose y-offset at zero
//! is the Table 4 dead fraction) and the greedy cumulative-coverage curve.

/// One ECDF point: `(validation count, fraction of roots ≤ count)`.
pub type EcdfPoint = (u32, f64);

/// Empirical CDF over per-root validation counts.
///
/// Returns one point per distinct count value, ascending; the first point
/// at count 0 (when present) is the dead-root fraction.
pub fn ecdf(counts: &[u32]) -> Vec<EcdfPoint> {
    if counts.is_empty() {
        return Vec::new();
    }
    let mut sorted = counts.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let mut out: Vec<EcdfPoint> = Vec::new();
    for (i, &c) in sorted.iter().enumerate() {
        let frac = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == c => last.1 = frac,
            _ => out.push((c, frac)),
        }
    }
    out
}

/// Fraction of roots validating zero certificates.
pub fn dead_fraction(counts: &[u32]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    counts.iter().filter(|&&c| c == 0).count() as f64 / counts.len() as f64
}

/// Greedy cumulative coverage: roots sorted by validation count
/// descending; point `i` is `(i + 1, certificates covered by the top i+1
/// roots)`. With single-anchor chains the marginal gain of a root is its
/// own count, so the greedy order is exactly the sort.
pub fn progressive_coverage(counts: &[u32]) -> Vec<(usize, u64)> {
    let mut sorted = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut acc = 0u64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            acc += c as u64;
            (i + 1, acc)
        })
        .collect()
}

/// How many of the highest-validating roots are needed to retain `target`
/// fraction of the full coverage — the Perl et al. "you won't be needing
/// these any more" planner the paper cites, used by the
/// `notary_coverage` example.
pub fn roots_needed_for(counts: &[u32], target: f64) -> usize {
    assert!((0.0..=1.0).contains(&target), "target must be a fraction");
    let curve = progressive_coverage(counts);
    let total = curve.last().map_or(0, |&(_, c)| c);
    if total == 0 {
        return 0;
    }
    let want = (total as f64 * target).ceil() as u64;
    curve
        .iter()
        .find(|&&(_, c)| c >= want)
        .map_or(counts.len(), |&(n, _)| n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basics() {
        let points = ecdf(&[0, 0, 5, 10]);
        assert_eq!(points, vec![(0, 0.5), (5, 0.75), (10, 1.0)]);
        assert!(ecdf(&[]).is_empty());
    }

    #[test]
    fn ecdf_is_monotone() {
        let counts = [3u32, 0, 7, 7, 1, 0, 250, 12];
        let points = ecdf(&counts);
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1 + 1e-12);
        }
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dead_fraction_counts_zeros() {
        assert_eq!(dead_fraction(&[0, 0, 1, 2]), 0.5);
        assert_eq!(dead_fraction(&[1, 2]), 0.0);
        assert_eq!(dead_fraction(&[]), 0.0);
    }

    #[test]
    fn progressive_coverage_descends_marginally() {
        let curve = progressive_coverage(&[5, 1, 10, 0]);
        assert_eq!(curve, vec![(1, 10), (2, 15), (3, 16), (4, 16)]);
    }

    #[test]
    fn roots_needed_for_targets() {
        // Counts: 10, 5, 1, 0 → total 16.
        let counts = [5u32, 1, 10, 0];
        assert_eq!(roots_needed_for(&counts, 0.5), 1); // 10 ≥ 8
        assert_eq!(roots_needed_for(&counts, 0.9), 2); // 15 ≥ 14.4→15
        assert_eq!(roots_needed_for(&counts, 1.0), 3); // 16 at 3 roots
        assert_eq!(roots_needed_for(&[], 0.9), 0);
        assert_eq!(roots_needed_for(&[0, 0], 0.9), 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn roots_needed_rejects_bad_target() {
        roots_needed_for(&[1], 1.5);
    }
}
