//! The Notary database view: record-keeping queries over the ecosystem.
//!
//! The paper's §5 classification asks one question of the Notary per
//! Android root certificate: *does the Notary have any record of it?*
//! (Figure 2's "Not recorded by ICSI Notary" class). [`NotaryDb`] answers
//! that, and carries the headline aggregate statistics (unique
//! certificates, non-expired count, total session volume).

use crate::ecosystem::{study_time, Ecosystem};
use std::collections::HashSet;
use tangled_pki::extras::catalogue;
use tangled_pki::stores::{global_factory, mint_extra};
use tangled_x509::CertIdentity;

/// Query view over a generated ecosystem.
pub struct NotaryDb {
    recorded: HashSet<CertIdentity>,
    unique_certs: usize,
    non_expired: usize,
    total_sessions: u64,
}

impl NotaryDb {
    /// Build the view. "Recorded" identities are every certificate that
    /// appears in observed traffic: leaves, presented intermediates, the
    /// issuing roots of validated chains, plus the catalogue extras whose
    /// `notary_seen` flag marks them as occasionally seen on other ports.
    pub fn build(eco: &Ecosystem) -> NotaryDb {
        let mut recorded = HashSet::new();
        let mut total_sessions = 0u64;
        let mut issuer_names: HashSet<String> = HashSet::new();

        for cert in &eco.certs {
            total_sessions += cert.sessions;
            for link in &cert.chain {
                recorded.insert(link.identity());
            }
            issuer_names.insert(cert.chain.last().expect("non-empty").issuer.to_string());
        }
        // Roots whose chains appear in traffic are recorded too.
        for root in &eco.universe_roots {
            if issuer_names.contains(&root.subject.to_string()) {
                recorded.insert(root.identity());
            }
        }
        // Extras flagged notary-seen (recorded from odd traffic even when
        // they validate nothing).
        {
            let mut factory = global_factory().lock().expect("factory poisoned");
            for extra in catalogue().iter().filter(|e| e.notary_seen) {
                recorded.insert(mint_extra(&mut factory, extra).identity());
            }
        }

        NotaryDb {
            recorded,
            unique_certs: eco.certs.len(),
            non_expired: eco
                .certs
                .iter()
                .filter(|c| c.leaf().is_valid_at(study_time()))
                .count(),
            total_sessions,
        }
    }

    /// Does the Notary have any record of this certificate identity?
    pub fn has_record(&self, id: &CertIdentity) -> bool {
        self.recorded.contains(id)
    }

    /// Unique certificates collected (the paper: >1.9 M at full scale of
    /// the real system; scaled here).
    pub fn unique_certs(&self) -> usize {
        self.unique_certs
    }

    /// Certificates not expired at the study time (paper: ~1 M).
    pub fn non_expired(&self) -> usize {
        self.non_expired
    }

    /// Total SSL session volume attributed (paper: >66 B).
    pub fn total_sessions(&self) -> u64 {
        self.total_sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecosystem::EcosystemSpec;

    fn db() -> (Ecosystem, NotaryDb) {
        let eco = Ecosystem::generate(&EcosystemSpec::scaled(0.05));
        let db = NotaryDb::build(&eco);
        (eco, db)
    }

    #[test]
    fn issuing_roots_are_recorded() {
        let (_eco, db) = db();
        let mut f = global_factory().lock().unwrap();
        // The busiest shared root issues traffic — recorded.
        let top = f.root(&tangled_pki::stores::shared_exact_name(1));
        assert!(db.has_record(&top.identity()));
        // A dead-weight shared root never appears in traffic.
        let dead = f.root(&tangled_pki::stores::shared_exact_name(110));
        assert!(!db.has_record(&dead.identity()));
    }

    #[test]
    fn offline_extras_not_recorded() {
        let (_eco, db) = db();
        let mut f = global_factory().lock().unwrap();
        let cat = catalogue();
        // Motorola FOTA (pinned notary_seen = false) has no record.
        let fota = cat.iter().find(|e| e.hint == "bae1df7c").unwrap();
        assert!(!fota.notary_seen);
        let cert = mint_extra(&mut f, fota);
        assert!(!db.has_record(&cert.identity()));
        // GlobalSign (store member, seen) is recorded.
        let gs = cat.iter().find(|e| e.hint == "da0ee699").unwrap();
        let cert = mint_extra(&mut f, gs);
        assert!(db.has_record(&cert.identity()));
    }

    #[test]
    fn aggregates_are_sane() {
        let (eco, db) = db();
        assert_eq!(db.unique_certs(), eco.len());
        assert!(db.non_expired() <= db.unique_certs());
        assert!(db.non_expired() > 0);
        assert!(db.total_sessions() > db.unique_certs() as u64);
    }
}
