//! `tangled-notary` — a calibrated simulator of the ICSI Certificate
//! Notary.
//!
//! The real Notary passively collects certificates from live traffic at
//! eight research networks (>1.9 M unique certificates, >66 B TLS
//! sessions). That dataset is closed, so this crate builds a synthetic
//! server-certificate ecosystem with the same *validation structure*:
//!
//! * every root-store member of [`tangled_pki::stores`] gets a calibrated
//!   issuance volume ([`ecosystem::issuance_plan`]): a Zipf-heavy core of
//!   shared web CAs, small volumes for government/operator roots, and a
//!   long tail of roots that issue nothing (the "dead weight" of Table 4);
//! * a *wild* population (self-signed and private-CA chains) that no store
//!   validates, sized so store coverage lands near the paper's ~74 %;
//! * real chains: every certificate is issued and signed through
//!   [`tangled_x509`], some through intermediates, and validation runs the
//!   real chain verifier.
//!
//! On top sit the measurement queries the paper's Tables 3–4 and Figure 3
//! need: per-root validation counts ([`validate::ValidationIndex`]),
//! per-store totals, dead-root fractions, and ECDF series
//! ([`coverage`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod db;
pub mod degrade;
pub mod ecosystem;
pub mod validate;

pub use db::NotaryDb;
pub use ecosystem::{Ecosystem, EcosystemSpec};
pub use validate::ValidationIndex;
