//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the tiny subset the workspace's benches use: [`black_box`],
//! the [`Criterion`] builder (`sample_size`, `warm_up_time`,
//! `measurement_time`, `configure_from_args`), [`Criterion::bench_function`]
//! with a [`Bencher`] exposing `iter`, and [`Criterion::final_summary`].
//! Measurement is plain wall-clock timing: it reports mean time per
//! iteration per sample, without criterion's statistical machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`]: an identity function opaque to
/// the optimizer.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Runs one benchmark's closure and accumulates timings.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    target_samples: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Time `routine`, first warming up, then recording samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost so the sample
        // loop can batch fast routines.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Pick a batch size aiming for measurement_time across all samples.
        let per_sample = self.measurement / self.target_samples.max(1) as u32;
        let batch = if per_iter.is_zero() {
            1_000
        } else {
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        self.iters_per_sample = batch;
        self.samples.clear();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn mean_per_iter(&self) -> Option<Duration> {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return None;
        }
        let total: Duration = self.samples.iter().sum();
        let iters = self.iters_per_sample * self.samples.len() as u64;
        Some(total / iters.max(1) as u32)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    completed: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            completed: 0,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up = duration;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement = duration;
        self
    }

    /// Accepted for API compatibility; this harness takes no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one benchmark and print its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 0,
            target_samples: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
        };
        f(&mut bencher);
        match bencher.mean_per_iter() {
            Some(mean) => println!("bench: {name:<50} {mean:>12.2?}/iter"),
            None => println!("bench: {name:<50} (no samples)"),
        }
        self.completed += 1;
        self
    }

    /// Print the closing summary line.
    pub fn final_summary(&mut self) {
        println!("bench: {} benchmark(s) completed", self.completed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .configure_from_args();
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs) + 1
            })
        });
        c.final_summary();
        assert!(runs > 0);
    }
}
