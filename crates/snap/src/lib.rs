//! `tangled-snap` — deterministic binary persistence for the study corpus
//! and the trustd swap history.
//!
//! Two halves, one crate:
//!
//! * **Snapshot container** ([`container`], [`study`]): a single-file,
//!   sectioned binary format holding the certificate corpus (raw DER),
//!   the reference and device root stores, the Netalyzr population, the
//!   ValidationIndex tallies and the run-health ledger. Writing shards
//!   section encoding over the ambient [`tangled_exec::ExecPool`] but the
//!   emitted bytes are identical at any pool width (sections are encoded
//!   independently and assembled in fixed id order). Reading is lazy —
//!   the section table is parsed up front, bodies are checksummed and
//!   decoded on access — and *never panics on hostile bytes*: every
//!   malformed input maps to a classified [`SnapError`].
//! * **Append-only journal** ([`journal`]): every trustd `swap` is framed
//!   (length + FNV-1a checksum + JSON body), appended and fsync'd before
//!   the store install is published — write-ahead order. On restart the
//!   journal is replayed over the snapshot's reference profiles and the
//!   epochs reproduce exactly; a torn final frame (a crash mid-append) is
//!   truncated away, not fatal.
//!
//! Checksums use the workspace's one shared FNV-1a implementation
//! ([`tangled_crypto::hash`]) — the same fold that derives obs span IDs
//! and catalogue keys.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod container;
pub mod delta;
pub mod journal;
pub mod study;
pub mod wire;

pub use compact::{encode_checkpoint, read_checkpoint, TrustState};
pub use container::{SectionId, Snapshot, VerifyRow, FORMAT_VERSION, MAGIC};
pub use delta::{
    decode_delta_meta, encode_delta, file_id, materialize, materialize_chain, DeltaMeta,
    DeltaSummary, Materialized, DELTA_BASE_NONE,
};
pub use journal::{Journal, Recovery, SwapRecord};
pub use study::{
    decode_eco_stores, decode_stores, decode_study, encode_study, encode_study_sections,
    load_study, write_study, SnapSummary,
};

/// Classified snapshot/journal failures.
///
/// Every variant carries a stable `label()` in the PR-1 quarantine
/// vocabulary, so corrupt files surface through `RunHealth` ledgers and
/// metrics exactly like damaged ingest surfaces do — classified, counted,
/// never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// Underlying filesystem failure.
    Io {
        /// Rendered `std::io::Error`.
        detail: String,
    },
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The container's format version is not one this build reads.
    BadVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The file ends before a structure it declared.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The section table is self-inconsistent (out-of-bounds extents,
    /// duplicate ids, implausible counts).
    BadSectionTable {
        /// What check failed.
        detail: &'static str,
    },
    /// A section body does not match its recorded checksum.
    ChecksumMismatch {
        /// The damaged section.
        section: &'static str,
    },
    /// A required section is absent from the table.
    MissingSection {
        /// The absent section.
        section: &'static str,
    },
    /// A section body decoded but its records are malformed.
    Malformed {
        /// The section being decoded.
        section: &'static str,
        /// What was wrong.
        detail: &'static str,
    },
    /// The journal file does not start with the journal magic.
    BadJournalMagic,
    /// Journal replay produced a different epoch than the one recorded
    /// at append time — the snapshot and journal do not belong together.
    EpochMismatch {
        /// The epoch the journal frame recorded.
        recorded: u64,
        /// The epoch replay actually produced.
        produced: u64,
    },
    /// A delta's recorded base id does not match the file it is being
    /// applied over — the chain is mis-ordered or a link was swapped.
    BaseMismatch {
        /// The base id the delta recorded.
        recorded: u64,
        /// The id of the file the chain actually supplies.
        actual: u64,
    },
}

impl SnapError {
    /// Stable error label (the `RunHealth` quarantine vocabulary).
    pub fn label(&self) -> &'static str {
        match self {
            SnapError::Io { .. } => "io",
            SnapError::BadMagic => "bad-magic",
            SnapError::BadVersion { .. } => "bad-version",
            SnapError::Truncated { .. } => "truncated",
            SnapError::BadSectionTable { .. } => "bad-section-table",
            SnapError::ChecksumMismatch { .. } => "checksum-mismatch",
            SnapError::MissingSection { .. } => "missing-section",
            SnapError::Malformed { .. } => "malformed-record",
            SnapError::BadJournalMagic => "bad-journal-magic",
            SnapError::EpochMismatch { .. } => "epoch-mismatch",
            SnapError::BaseMismatch { .. } => "base-mismatch",
        }
    }
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Io { detail } => write!(f, "io failure: {detail}"),
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::BadVersion { found } => {
                write!(f, "unsupported snapshot format version {found}")
            }
            SnapError::Truncated { context } => write!(f, "truncated while reading {context}"),
            SnapError::BadSectionTable { detail } => write!(f, "bad section table: {detail}"),
            SnapError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section '{section}'")
            }
            SnapError::MissingSection { section } => write!(f, "missing section '{section}'"),
            SnapError::Malformed { section, detail } => {
                write!(f, "malformed record in section '{section}': {detail}")
            }
            SnapError::BadJournalMagic => write!(f, "not a journal file (bad magic)"),
            SnapError::EpochMismatch { recorded, produced } => write!(
                f,
                "journal replay epoch diverged: recorded {recorded}, produced {produced}"
            ),
            SnapError::BaseMismatch { recorded, actual } => write!(
                f,
                "delta base mismatch: delta applies over {recorded:016x}, chain has {actual:016x}"
            ),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> SnapError {
        SnapError::Io {
            detail: e.to_string(),
        }
    }
}
