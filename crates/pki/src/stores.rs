//! Reference root-store manifests.
//!
//! Rebuilds the *structure* of the eight root stores the paper compares:
//! the four AOSP releases (139/140/146/150 anchors — Table 1), Mozilla
//! (153) and iOS 7 (227), plus the aggregated "Android in the wild"
//! universe (235 — Table 4). The certificates are synthetic (the real
//! stores are a closed dataset in DER form), but every cardinality and
//! overlap the paper reports is encoded:
//!
//! * 117 anchors **byte-identical** between AOSP 4.4 and Mozilla (§2);
//! * 13 more that are *equivalent* — same subject and RSA modulus,
//!   re-issued DER — bringing the equivalence-overlap to 130 (Table 4's
//!   "AOSP 4.4 and Mozilla root certs" row);
//! * the expired Autoridad de Certificacion Firmaprofesional root that AOSP
//!   still ships (§2);
//! * AOSP stores that only grow across releases (§2, and the Sony 4.1
//!   observation in §5);
//! * Mozilla's 23 non-AOSP members, 16 of which are the "found on Android
//!   devices" extras of Figure 2 (Table 4 row 2);
//! * iOS 7 as the largest store, containing the 24 iOS-member extras.

use crate::extras::{catalogue, ExtraCert};
use crate::factory::{CaFactory, CaSpec};
use crate::store::RootStore;
use crate::trust::AnchorSource;
use crate::vocab::AndroidVersion;
use tangled_asn1::Time;

/// Display name of the expired AOSP root (§2 of the paper).
pub const FIRMAPROFESIONAL: &str =
    "Autoridad de Certificacion Firmaprofesional CIF A62634068";

/// The reference stores of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReferenceStore {
    /// Google's AOSP distribution for Android 4.1.
    Aosp41,
    /// Google's AOSP distribution for Android 4.2.
    Aosp42,
    /// Google's AOSP distribution for Android 4.3.
    Aosp43,
    /// Google's AOSP distribution for Android 4.4.
    Aosp44,
    /// Mozilla's root store (NSS).
    Mozilla,
    /// Apple iOS 7's root store.
    Ios7,
}

impl ReferenceStore {
    /// All reference stores, AOSP releases first.
    pub const ALL: [ReferenceStore; 6] = [
        ReferenceStore::Aosp41,
        ReferenceStore::Aosp42,
        ReferenceStore::Aosp43,
        ReferenceStore::Aosp44,
        ReferenceStore::Mozilla,
        ReferenceStore::Ios7,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ReferenceStore::Aosp41 => "AOSP 4.1",
            ReferenceStore::Aosp42 => "AOSP 4.2",
            ReferenceStore::Aosp43 => "AOSP 4.3",
            ReferenceStore::Aosp44 => "AOSP 4.4",
            ReferenceStore::Mozilla => "Mozilla",
            ReferenceStore::Ios7 => "iOS 7",
        }
    }

    /// The certificate count the paper reports (Table 1).
    pub fn expected_len(self) -> usize {
        match self {
            ReferenceStore::Aosp41 => 139,
            ReferenceStore::Aosp42 => 140,
            ReferenceStore::Aosp43 => 146,
            ReferenceStore::Aosp44 => 150,
            ReferenceStore::Mozilla => 153,
            ReferenceStore::Ios7 => 227,
        }
    }

    /// The AOSP store for an Android version.
    pub fn for_version(v: AndroidVersion) -> ReferenceStore {
        match v {
            AndroidVersion::V4_1 => ReferenceStore::Aosp41,
            AndroidVersion::V4_2 => ReferenceStore::Aosp42,
            AndroidVersion::V4_3 => ReferenceStore::Aosp43,
            AndroidVersion::V4_4 => ReferenceStore::Aosp44,
        }
    }

    /// Build the store with a fresh factory. Prefer
    /// [`ReferenceStore::build_with`] when building several stores so the
    /// key cache is shared, or [`ReferenceStore::cached`] to share fully
    /// built stores process-wide.
    pub fn build(self) -> RootStore {
        self.build_with(&mut CaFactory::new())
    }

    /// A process-wide shared copy of this store, built once on first use
    /// from the [`global_factory`]. Key generation dominates store
    /// construction, so everything that only *reads* a reference store
    /// (simulators, analyses, benchmarks) should use this.
    pub fn cached(self) -> std::sync::Arc<RootStore> {
        use std::sync::{Arc, Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<std::collections::HashMap<ReferenceStore, Arc<RootStore>>>> =
            OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(std::collections::HashMap::new()));
        let mut guard = cache.lock().expect("store cache poisoned");
        if let Some(store) = guard.get(&self) {
            return Arc::clone(store);
        }
        let store = {
            let mut factory = global_factory().lock().expect("factory poisoned");
            Arc::new(self.build_with(&mut factory))
        };
        guard.insert(self, Arc::clone(&store));
        store
    }

    /// Build the store using a shared factory.
    pub fn build_with(self, f: &mut CaFactory) -> RootStore {
        let mut store = RootStore::new(self.name());
        match self {
            ReferenceStore::Aosp41 => build_aosp(f, &mut store, AndroidVersion::V4_1),
            ReferenceStore::Aosp42 => build_aosp(f, &mut store, AndroidVersion::V4_2),
            ReferenceStore::Aosp43 => build_aosp(f, &mut store, AndroidVersion::V4_3),
            ReferenceStore::Aosp44 => build_aosp(f, &mut store, AndroidVersion::V4_4),
            ReferenceStore::Mozilla => build_mozilla(f, &mut store),
            ReferenceStore::Ios7 => build_ios7(f, &mut store),
        }
        debug_assert_eq!(store.len(), self.expected_len());
        store
    }
}

/// Ecosystem store families beyond the paper's reference set.
///
/// The position paper "Certificate Root Stores: An Area of Unity or
/// Disparity?" generalises the Android-vs-Mozilla comparison to the four
/// big root programs. These profiles are synthesized with *calibrated*
/// overlap structure against the [`ReferenceStore`] set: every family
/// carries a slice of the shared web-trust core, its own exclusives, and
/// (for Java) the re-issued shared variants — so identity-overlap and
/// byte-overlap diverge across ecosystems exactly as §5.1's ablation
/// does for AOSP vs Mozilla.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EcosystemStore {
    /// Apple's desktop root program (a near-superset sibling of iOS 7).
    Apple,
    /// Microsoft's root program — the largest store of the ten.
    Microsoft,
    /// Mozilla NSS trunk — a near-clone of the reference Mozilla store.
    MozillaNss,
    /// Oracle Java `cacerts` — the smallest store of the ten.
    Java,
}

impl EcosystemStore {
    /// All ecosystem families, in canonical (epoch) order.
    pub const ALL: [EcosystemStore; 4] = [
        EcosystemStore::Apple,
        EcosystemStore::Microsoft,
        EcosystemStore::MozillaNss,
        EcosystemStore::Java,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EcosystemStore::Apple => "Apple",
            EcosystemStore::Microsoft => "Microsoft",
            EcosystemStore::MozillaNss => "Mozilla NSS",
            EcosystemStore::Java => "Java",
        }
    }

    /// The calibrated certificate count.
    pub fn expected_len(self) -> usize {
        match self {
            EcosystemStore::Apple => 213,
            EcosystemStore::Microsoft => 261,
            EcosystemStore::MozillaNss => 156,
            EcosystemStore::Java => 131,
        }
    }

    /// Build the store with a fresh factory. Prefer
    /// [`EcosystemStore::cached`] for read-only use.
    pub fn build(self) -> RootStore {
        self.build_with(&mut CaFactory::new())
    }

    /// A process-wide shared copy, built once from the [`global_factory`]
    /// (mirrors [`ReferenceStore::cached`]).
    pub fn cached(self) -> std::sync::Arc<RootStore> {
        use std::sync::{Arc, Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<std::collections::HashMap<EcosystemStore, Arc<RootStore>>>> =
            OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(std::collections::HashMap::new()));
        let mut guard = cache.lock().expect("store cache poisoned");
        if let Some(store) = guard.get(&self) {
            return Arc::clone(store);
        }
        let store = {
            let mut factory = global_factory().lock().expect("factory poisoned");
            Arc::new(self.build_with(&mut factory))
        };
        guard.insert(self, Arc::clone(&store));
        store
    }

    /// Build the store using a shared factory.
    pub fn build_with(self, f: &mut CaFactory) -> RootStore {
        let mut store = RootStore::new(self.name());
        match self {
            EcosystemStore::Apple => build_apple(f, &mut store),
            EcosystemStore::Microsoft => build_microsoft(f, &mut store),
            EcosystemStore::MozillaNss => build_nss(f, &mut store),
            EcosystemStore::Java => build_java(f, &mut store),
        }
        debug_assert_eq!(store.len(), self.expected_len());
        store
    }
}

/// Canonical name order of the ten standard profiles trustd serves and
/// the disparity engine compares: the six reference stores first (in
/// [`ReferenceStore::ALL`] order), then the four ecosystem families (in
/// [`EcosystemStore::ALL`] order). Epoch order, report row order, and
/// `compare` reply order all follow this list.
pub fn standard_store_names() -> Vec<&'static str> {
    ReferenceStore::ALL
        .into_iter()
        .map(ReferenceStore::name)
        .chain(EcosystemStore::ALL.into_iter().map(EcosystemStore::name))
        .collect()
}

/// The process-wide shared [`CaFactory`] (workspace seed, default key
/// size). Sharing it means a CA's key pair is generated exactly once per
/// process no matter how many stores or simulators need it.
pub fn global_factory() -> &'static std::sync::Mutex<CaFactory> {
    use std::sync::{Mutex, OnceLock};
    static FACTORY: OnceLock<Mutex<CaFactory>> = OnceLock::new();
    FACTORY.get_or_init(|| Mutex::new(CaFactory::new()))
}

// --- composition constants ------------------------------------------------

/// Anchors byte-identical between AOSP 4.4 and Mozilla.
pub const SHARED_EXACT: usize = 117;
/// Anchors equivalent (same subject + modulus) but re-issued between them.
pub const SHARED_REISSUED: usize = 13;
/// AOSP 4.4 members absent from Mozilla.
pub const AOSP_ONLY: usize = 20;
/// Mozilla synthetic members absent from AOSP and from the extras list.
pub const MOZILLA_ONLY_SYNTHETIC: usize = 7;
/// iOS-7-only synthetic members.
pub const IOS7_ONLY_SYNTHETIC: usize = 63;
/// AOSP-only members that iOS 7 also carries.
pub const AOSP_ONLY_IN_IOS7: usize = 10;

/// Per-AOSP-version membership thresholds (stores only grow):
/// (shared-exact, shared-reissued, aosp-only) counts per release.
fn aosp_composition(v: AndroidVersion) -> (usize, usize, usize) {
    match v {
        AndroidVersion::V4_1 => (110, 11, 18), // 139
        AndroidVersion::V4_2 => (111, 11, 18), // 140
        AndroidVersion::V4_3 => (115, 12, 19), // 146
        AndroidVersion::V4_4 => (117, 13, 20), // 150
    }
}

/// Name of the i-th shared (byte-identical) anchor, 1-based.
pub fn shared_exact_name(i: usize) -> String {
    format!("Shared Web Trust Root CA {i:03}")
}

/// Name of the i-th shared re-issued anchor, 1-based.
pub fn shared_reissued_name(i: usize) -> String {
    format!("Reissued Web Trust Root CA {i:02}")
}

/// Name of the i-th AOSP-only anchor, 1-based. Index 1 is the expired
/// Firmaprofesional root.
pub fn aosp_only_name(i: usize) -> String {
    if i == 1 {
        FIRMAPROFESIONAL.to_owned()
    } else {
        format!("AOSP Regional Root CA {i:02}")
    }
}

/// Name of the i-th Mozilla-only synthetic anchor, 1-based.
pub fn mozilla_only_name(i: usize) -> String {
    format!("Mozilla Program Root CA {i:02}")
}

/// Name of the i-th iOS-7-only synthetic anchor, 1-based.
pub fn ios7_only_name(i: usize) -> String {
    format!("Apple Partner Root CA {i:02}")
}

fn mint_root(f: &mut CaFactory, name: &str) -> std::sync::Arc<tangled_x509::Certificate> {
    if name == FIRMAPROFESIONAL {
        // The expired root the paper calls out: expired Oct. 2013, still in
        // AOSP 4.4.
        let mut spec = CaSpec::named(name);
        spec.not_before = Time::date(2001, 10, 24).expect("valid date");
        spec.not_after = Time::date(2013, 10, 24).expect("valid date");
        f.root_with_spec(name, &spec).expect("spec is valid")
    } else {
        f.root(name)
    }
}

fn build_aosp(f: &mut CaFactory, store: &mut RootStore, v: AndroidVersion) {
    let (n_exact, n_reissued, n_only) = aosp_composition(v);
    for i in 1..=n_exact {
        store.add_cert(mint_root(f, &shared_exact_name(i)), AnchorSource::Aosp);
    }
    for i in 1..=n_reissued {
        // AOSP carries the *re-issued* variant; Mozilla the original.
        store.add_cert(
            f.reissued_root(&shared_reissued_name(i)),
            AnchorSource::Aosp,
        );
    }
    for i in 1..=n_only {
        store.add_cert(mint_root(f, &aosp_only_name(i)), AnchorSource::Aosp);
    }
}

fn build_mozilla(f: &mut CaFactory, store: &mut RootStore) {
    for i in 1..=SHARED_EXACT {
        store.add_cert(mint_root(f, &shared_exact_name(i)), AnchorSource::Aosp);
    }
    for i in 1..=SHARED_REISSUED {
        // The original issue — byte-unequal to AOSP's copy, same identity.
        store.add_cert(f.root(&shared_reissued_name(i)), AnchorSource::Aosp);
    }
    // The 16 Figure 2 extras that are Mozilla members.
    for extra in catalogue().iter().filter(|e| e.in_mozilla) {
        store.add_cert(mint_extra(f, extra), AnchorSource::Aosp);
    }
    for i in 1..=MOZILLA_ONLY_SYNTHETIC {
        store.add_cert(mint_root(f, &mozilla_only_name(i)), AnchorSource::Aosp);
    }
}

fn build_ios7(f: &mut CaFactory, store: &mut RootStore) {
    for i in 1..=SHARED_EXACT {
        store.add_cert(mint_root(f, &shared_exact_name(i)), AnchorSource::Aosp);
    }
    for i in 1..=SHARED_REISSUED {
        store.add_cert(f.root(&shared_reissued_name(i)), AnchorSource::Aosp);
    }
    // iOS 7 carries some of the AOSP-only regional roots too.
    for i in 1..=AOSP_ONLY_IN_IOS7 {
        // Skip the expired Firmaprofesional (index 1) — Apple dropped it.
        store.add_cert(mint_root(f, &aosp_only_name(i + 1)), AnchorSource::Aosp);
    }
    // The 24 Figure 2 extras that are iOS 7 members (incl. DoD CLASS 3).
    for extra in catalogue().iter().filter(|e| e.in_ios7) {
        store.add_cert(mint_extra(f, extra), AnchorSource::Aosp);
    }
    for i in 1..=IOS7_ONLY_SYNTHETIC {
        store.add_cert(mint_root(f, &ios7_only_name(i)), AnchorSource::Aosp);
    }
}

// --- ecosystem family compositions ---------------------------------------
//
// Calibration at a glance (identity overlap with the shared core):
//
//   Apple      = 117 exact + 13 orig + 10 aosp-only + 24 iOS extras
//                + 40 Apple partner + 9 exclusives            = 213
//   Microsoft  = 117 exact + 13 orig + 9 aosp-only + 7 Mozilla program
//                + 16 Mozilla extras + 99 exclusives          = 261
//   MozillaNss = 115 exact + 13 orig + 16 Mozilla extras
//                + 7 Mozilla program + 5 exclusives           = 156
//   Java       = 100 exact + 13 *re-issued* + 18 exclusives   = 131

/// How many of the iOS-7 partner roots Apple's desktop program shares.
pub const APPLE_PARTNER_SHARED: usize = 40;
/// Apple-desktop-only synthetic members.
pub const APPLE_ONLY_SYNTHETIC: usize = 9;
/// Microsoft-only synthetic members.
pub const MICROSOFT_ONLY_SYNTHETIC: usize = 99;
/// Shared-core prefix NSS trunk carries (two fewer than release Mozilla).
pub const NSS_SHARED_EXACT: usize = 115;
/// NSS-trunk-only synthetic members.
pub const NSS_ONLY_SYNTHETIC: usize = 5;
/// Shared-core prefix Java `cacerts` carries.
pub const JAVA_SHARED_EXACT: usize = 100;
/// Java-only synthetic members.
pub const JAVA_ONLY_SYNTHETIC: usize = 18;

/// Name of the i-th Apple-desktop-only synthetic anchor, 1-based.
pub fn apple_only_name(i: usize) -> String {
    format!("Apple Desktop Root CA {i:02}")
}

/// Name of the i-th Microsoft-only synthetic anchor, 1-based.
pub fn microsoft_only_name(i: usize) -> String {
    format!("Microsoft Trust Root CA {i:02}")
}

/// Name of the i-th NSS-trunk-only synthetic anchor, 1-based.
pub fn nss_only_name(i: usize) -> String {
    format!("NSS Builtin Object Token CA {i:02}")
}

/// Name of the i-th Java-only synthetic anchor, 1-based.
pub fn java_only_name(i: usize) -> String {
    format!("Java SE Cacerts Root CA {i:02}")
}

fn build_apple(f: &mut CaFactory, store: &mut RootStore) {
    for i in 1..=SHARED_EXACT {
        store.add_cert(mint_root(f, &shared_exact_name(i)), AnchorSource::Aosp);
    }
    for i in 1..=SHARED_REISSUED {
        // Desktop ships the original issue, like iOS 7.
        store.add_cert(f.root(&shared_reissued_name(i)), AnchorSource::Aosp);
    }
    for i in 1..=AOSP_ONLY_IN_IOS7 {
        // Same regional roots iOS 7 carries (Firmaprofesional dropped).
        store.add_cert(mint_root(f, &aosp_only_name(i + 1)), AnchorSource::Aosp);
    }
    for extra in catalogue().iter().filter(|e| e.in_ios7) {
        store.add_cert(mint_extra(f, extra), AnchorSource::Aosp);
    }
    for i in 1..=APPLE_PARTNER_SHARED {
        store.add_cert(mint_root(f, &ios7_only_name(i)), AnchorSource::Aosp);
    }
    for i in 1..=APPLE_ONLY_SYNTHETIC {
        store.add_cert(mint_root(f, &apple_only_name(i)), AnchorSource::Aosp);
    }
}

fn build_microsoft(f: &mut CaFactory, store: &mut RootStore) {
    for i in 1..=SHARED_EXACT {
        store.add_cert(mint_root(f, &shared_exact_name(i)), AnchorSource::Aosp);
    }
    for i in 1..=SHARED_REISSUED {
        store.add_cert(f.root(&shared_reissued_name(i)), AnchorSource::Aosp);
    }
    for i in 1..=AOSP_ONLY_IN_IOS7 - 1 {
        // One fewer regional root than Apple/iOS carry.
        store.add_cert(mint_root(f, &aosp_only_name(i + 1)), AnchorSource::Aosp);
    }
    for i in 1..=MOZILLA_ONLY_SYNTHETIC {
        store.add_cert(mint_root(f, &mozilla_only_name(i)), AnchorSource::Aosp);
    }
    for extra in catalogue().iter().filter(|e| e.in_mozilla) {
        store.add_cert(mint_extra(f, extra), AnchorSource::Aosp);
    }
    for i in 1..=MICROSOFT_ONLY_SYNTHETIC {
        store.add_cert(mint_root(f, &microsoft_only_name(i)), AnchorSource::Aosp);
    }
}

fn build_nss(f: &mut CaFactory, store: &mut RootStore) {
    // Trunk trails the release store by two core anchors and carries a
    // handful of not-yet-released builtins — a near-clone of "Mozilla"
    // with a distinct anchor set (the §5.2 shape, across ecosystems).
    for i in 1..=NSS_SHARED_EXACT {
        store.add_cert(mint_root(f, &shared_exact_name(i)), AnchorSource::Aosp);
    }
    for i in 1..=SHARED_REISSUED {
        store.add_cert(f.root(&shared_reissued_name(i)), AnchorSource::Aosp);
    }
    for extra in catalogue().iter().filter(|e| e.in_mozilla) {
        store.add_cert(mint_extra(f, extra), AnchorSource::Aosp);
    }
    for i in 1..=MOZILLA_ONLY_SYNTHETIC {
        store.add_cert(mint_root(f, &mozilla_only_name(i)), AnchorSource::Aosp);
    }
    for i in 1..=NSS_ONLY_SYNTHETIC {
        store.add_cert(mint_root(f, &nss_only_name(i)), AnchorSource::Aosp);
    }
}

fn build_java(f: &mut CaFactory, store: &mut RootStore) {
    for i in 1..=JAVA_SHARED_EXACT {
        store.add_cert(mint_root(f, &shared_exact_name(i)), AnchorSource::Aosp);
    }
    for i in 1..=SHARED_REISSUED {
        // cacerts ships the *re-issued* variant like AOSP: identity-equal
        // to the originals, byte-unequal — cross-ecosystem §5.1 ablation.
        store.add_cert(
            f.reissued_root(&shared_reissued_name(i)),
            AnchorSource::Aosp,
        );
    }
    for i in 1..=JAVA_ONLY_SYNTHETIC {
        store.add_cert(mint_root(f, &java_only_name(i)), AnchorSource::Aosp);
    }
}

/// A §5.2 "+unusual" near-clone: same display name as `base`, same
/// anchors, plus `extra` unusual roots. Diffing machinery must key on
/// content — two stores sharing a name are *not* the same store.
pub fn unusual_clone(f: &mut CaFactory, base: &RootStore, extra: usize) -> RootStore {
    let mut clone = base.cloned_as(base.name());
    for i in 1..=extra {
        clone.add_cert(
            mint_root(f, &format!("{} Unusual Root CA {i:02}", base.name())),
            AnchorSource::Manufacturer,
        );
    }
    clone
}

/// Mint the certificate for a Figure 2 extra. The subject carries the
/// paper's hint as an OU so duplicate display names stay distinct.
pub fn mint_extra(
    f: &mut CaFactory,
    extra: &ExtraCert,
) -> std::sync::Arc<tangled_x509::Certificate> {
    let key = extra.key_name();
    let mut spec = CaSpec::named(extra.name);
    spec.subject = tangled_x509::DistinguishedName::builder()
        .common_name(extra.name)
        .organizational_unit(extra.hint)
        .build();
    f.root_with_spec(&key, &spec).expect("spec is valid")
}

/// Build the "aggregated Android" universe of Table 4: the AOSP 4.4 store
/// plus every wild extra that is in neither AOSP nor Mozilla
/// (150 + 85 ≈ the paper's 235; ours is 150 + 88 = 238 because the Figure 2
/// axis carries 88 such certificates — see EXPERIMENTS.md).
pub fn aggregated_android(f: &mut CaFactory) -> RootStore {
    let mut store = ReferenceStore::Aosp44
        .build_with(f)
        .cloned_as("Aggregated Android");
    for extra in catalogue().iter().filter(|e| !e.in_mozilla) {
        store.add_cert(mint_extra(f, extra), AnchorSource::Manufacturer);
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{diff, distinct_count, IdentityMode};

    #[test]
    fn table1_cardinalities() {
        for rs in ReferenceStore::ALL {
            let store = rs.cached();
            assert_eq!(store.len(), rs.expected_len(), "{}", rs.name());
        }
    }

    #[test]
    fn aosp_stores_only_grow() {
        let stores: Vec<_> = AndroidVersion::ALL
            .iter()
            .map(|&v| ReferenceStore::for_version(v).cached())
            .collect();
        for w in stores.windows(2) {
            let d = diff(&w[0], &w[1]);
            assert!(d.removed.is_empty(), "AOSP releases never drop anchors");
            assert!(!d.added.is_empty(), "each release adds anchors");
        }
    }

    #[test]
    fn aosp44_mozilla_overlap_is_130_equivalent_117_exact() {
        let aosp = ReferenceStore::Aosp44.cached();
        let mozilla = ReferenceStore::Mozilla.cached();

        // Paper-identity overlap (subject + modulus): 130 (Table 4).
        let d = diff(&mozilla, &aosp);
        assert_eq!(d.common.len(), 130);

        // Byte-identical overlap: 117 (§2's "117 of AOSP 4.4's 150").
        let aosp_hashes: std::collections::HashSet<[u8; 32]> = aosp
            .iter()
            .map(|a| a.cert.fingerprint_sha256())
            .collect();
        let exact = mozilla
            .iter()
            .filter(|a| aosp_hashes.contains(&a.cert.fingerprint_sha256()))
            .count();
        assert_eq!(exact, 117);
    }

    #[test]
    fn firmaprofesional_expired_but_present() {
        let aosp = ReferenceStore::Aosp44.cached();
        let study = Time::date(2014, 2, 1).unwrap();
        let expired: Vec<_> = aosp
            .iter()
            .filter(|a| a.cert.is_expired_at(study))
            .collect();
        assert_eq!(expired.len(), 1, "exactly one expired AOSP anchor");
        assert!(expired[0]
            .cert
            .subject
            .to_string()
            .contains("Firmaprofesional"));
        // All four AOSP releases carry it.
        for v in AndroidVersion::ALL {
            let s = ReferenceStore::for_version(v).cached();
            assert!(
                s.iter().any(|a| a.cert.is_expired_at(study)),
                "{} carries the expired root",
                v.label()
            );
        }
        // Mozilla and iOS 7 do not.
        for rs in [ReferenceStore::Mozilla, ReferenceStore::Ios7] {
            let s = rs.cached();
            assert!(s.iter().all(|a| !a.cert.is_expired_at(study)));
        }
    }

    #[test]
    fn ios7_is_largest_and_contains_dod() {
        let ios = ReferenceStore::Ios7.cached();
        for rs in ReferenceStore::ALL {
            assert!(ios.len() >= rs.expected_len());
        }
        assert!(ios
            .iter()
            .any(|a| a.cert.subject.to_string().contains("DoD CLASS 3")));
        // Mozilla does not carry DoD (Intranet CA footnote).
        let moz = ReferenceStore::Mozilla.cached();
        assert!(!moz
            .iter()
            .any(|a| a.cert.subject.to_string().contains("DoD CLASS 3")));
    }

    #[test]
    fn aggregated_android_size() {
        let mut f = global_factory().lock().unwrap();
        let agg = aggregated_android(&mut f);
        // 150 AOSP 4.4 + 88 extras outside Mozilla (paper: 235; the Figure 2
        // axis yields 88 rather than 85 such extras).
        assert_eq!(agg.len(), 238);
    }

    #[test]
    fn stores_are_reproducible() {
        // Fresh factories on purpose: proves bit-stability across factories.
        let a = ReferenceStore::Aosp41.build();
        let b = ReferenceStore::Aosp41.build();
        assert_eq!(a.identities(), b.identities());
        let ha: Vec<_> = a.iter().map(|x| x.cert.fingerprint_sha256()).collect();
        let hb: Vec<_> = b.iter().map(|x| x.cert.fingerprint_sha256()).collect();
        assert_eq!(ha, hb);
    }

    #[test]
    fn ecosystem_cardinalities() {
        for es in EcosystemStore::ALL {
            let store = es.cached();
            assert_eq!(store.len(), es.expected_len(), "{}", es.name());
        }
    }

    #[test]
    fn microsoft_largest_java_smallest() {
        let ms = EcosystemStore::Microsoft.cached();
        let java = EcosystemStore::Java.cached();
        for rs in ReferenceStore::ALL {
            assert!(ms.len() > rs.cached().len());
            assert!(java.len() < rs.cached().len());
        }
        for es in EcosystemStore::ALL {
            assert!(ms.len() >= es.cached().len());
            assert!(java.len() <= es.cached().len());
        }
    }

    #[test]
    fn ecosystem_overlap_calibration() {
        // Apple shares iOS 7's core, extras, regional roots, and 40 of
        // the partner roots: 117 + 13 + 10 + 24 + 40 = 204 identities.
        let apple = EcosystemStore::Apple.cached();
        let ios = ReferenceStore::Ios7.cached();
        assert_eq!(diff(&apple, &ios).common.len(), 204);

        // NSS trunk is a near-clone of release Mozilla: 115 + 13 + 16 + 7
        // = 151 shared identities out of 153 / 156.
        let nss = EcosystemStore::MozillaNss.cached();
        let moz = ReferenceStore::Mozilla.cached();
        let d = diff(&moz, &nss);
        assert_eq!(d.common.len(), 151);
        assert_eq!(d.removed.len(), 2, "release-only core anchors");
        assert_eq!(d.added.len(), 5, "trunk-only builtins");

        // Java overlaps Mozilla only through the shared core: 100 exact
        // + 13 re-issued (identity-equal, byte-unequal) = 113.
        let java = EcosystemStore::Java.cached();
        assert_eq!(diff(&java, &moz).common.len(), 113);
        let all: Vec<_> = java
            .iter()
            .chain(moz.iter())
            .map(|a| a.cert.as_ref().clone())
            .collect();
        // Byte identity splits the 13 re-issued pairs apart again.
        let by_identity = distinct_count(all.iter(), IdentityMode::SubjectAndModulus);
        let by_bytes = distinct_count(all.iter(), IdentityMode::ByteHash);
        assert_eq!(by_bytes, by_identity + 13);
    }

    #[test]
    fn every_family_has_exclusives() {
        // Each ecosystem family keeps members no other standard store
        // carries, so no store is a subset of the union of the others.
        let stores: Vec<_> = ReferenceStore::ALL
            .iter()
            .map(|rs| rs.cached())
            .chain(EcosystemStore::ALL.iter().map(|es| es.cached()))
            .collect();
        assert_eq!(standard_store_names().len(), stores.len());
        for es in EcosystemStore::ALL {
            let own = es.cached();
            let others: std::collections::HashSet<_> = stores
                .iter()
                .filter(|s| s.name() != es.name())
                .flat_map(|s| s.identities().iter().cloned())
                .collect();
            let exclusive = own
                .identities()
                .iter()
                .filter(|id| !others.contains(id))
                .count();
            assert!(exclusive > 0, "{} has no exclusives", es.name());
        }
    }

    #[test]
    fn unusual_clone_shares_name_not_content() {
        let base = EcosystemStore::Java.cached();
        let mut f = global_factory().lock().unwrap();
        let clone = unusual_clone(&mut f, &base, 2);
        assert_eq!(clone.name(), base.name(), "display names collide");
        let d = diff(&base, &clone);
        assert_eq!(d.added.len(), 2, "the unusual roots");
        assert!(d.removed.is_empty());
        assert_eq!(d.common.len(), base.len());
    }

    #[test]
    fn ecosystem_stores_are_reproducible() {
        let a = EcosystemStore::Microsoft.build();
        let b = EcosystemStore::Microsoft.build();
        assert_eq!(a.identities(), b.identities());
        let ha: Vec<_> = a.iter().map(|x| x.cert.fingerprint_sha256()).collect();
        let hb: Vec<_> = b.iter().map(|x| x.cert.fingerprint_sha256()).collect();
        assert_eq!(ha, hb);
    }

    #[test]
    fn reissued_members_diverge_in_bytes_only() {
        let aosp = ReferenceStore::Aosp44.cached();
        let moz = ReferenceStore::Mozilla.cached();
        // Under byte identity the stores share fewer members than under
        // the paper's identity — the DESIGN.md §5.1 ablation in miniature.
        let all: Vec<_> = aosp
            .iter()
            .chain(moz.iter())
            .map(|a| a.cert.as_ref().clone())
            .collect();
        let by_bytes = distinct_count(all.iter(), IdentityMode::ByteHash);
        let by_identity = distinct_count(all.iter(), IdentityMode::SubjectAndModulus);
        assert_eq!(by_identity, 150 + 153 - 130);
        assert_eq!(by_bytes, 150 + 153 - 117);
    }
}
