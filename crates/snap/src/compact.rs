//! Journal compaction: fold the swap history into a checkpoint.
//!
//! The swap journal grows with every `swap` trustd serves, and replay
//! cost grows with it — O(total swaps ever). Compaction folds the
//! journal down to *what the swaps currently amount to*: the last
//! [`SwapRecord`] per profile, plus the global epoch the history
//! reached. That fold is encoded as a [`SectionId::TrustState`] section
//! inside a **checkpoint**: a delta snapshot (see [`crate::delta`])
//! that reuses every section of its base unchanged and carries only the
//! trust-state. After the checkpoint is durably on disk the journal is
//! truncated back to its magic, so recovery is O(current state):
//! materialise base + checkpoint, apply the folded records at their
//! recorded epochs, replay whatever short tail accumulated since.
//!
//! ```text
//! trust-state := epoch  varint       (global epoch after the fold)
//!                count  varint ×{
//!                  profile str, epoch varint, store str,
//!                  anchors varint ×{ subject str, source str,
//!                                    enabled u8, der_hex str } }
//! ```
//!
//! WAL ordering is preserved by the *writer* (trustd): the checkpoint
//! is written tmp + fsync + rename before `Journal::reset` truncates
//! the tail, both under the journal mutex. A crash between the two
//! leaves a checkpoint *and* a full journal — replay tolerates that by
//! skipping records whose epoch the folded state already covers.

use crate::container::SectionId;
use crate::delta::{encode_delta, encode_delta_meta, DeltaMeta, DeltaSummary, DELTA_BASE_NONE};
use crate::journal::SwapRecord;
use crate::wire::{put_str, put_varint, Cursor};
use crate::{SnapError, Snapshot};
use tangled_pki::store::{StoreSnapshot, StoreSnapshotEntry};

/// The folded swap history: one record per profile, epoch order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrustState {
    /// The global store-index epoch after applying every fold record —
    /// i.e. the epoch of the last swap the journal held.
    pub epoch: u64,
    /// The surviving (latest) swap per profile, ascending by epoch so
    /// replaying them in order reproduces the recorded epochs exactly.
    pub records: Vec<SwapRecord>,
}

impl TrustState {
    /// Fold a journal's replayed records: keep the highest-epoch swap
    /// per profile, order survivors by epoch. Keying on epoch (not list
    /// position) makes the fold order-insensitive, so absorbing an
    /// already-covered journal tail (the compaction crash window) is
    /// idempotent.
    pub fn fold(records: &[SwapRecord]) -> TrustState {
        let mut latest: Vec<&SwapRecord> = Vec::new();
        let mut epoch = 0u64;
        for record in records {
            epoch = epoch.max(record.epoch);
            if let Some(slot) = latest.iter_mut().find(|r| r.profile == record.profile) {
                if record.epoch >= slot.epoch {
                    *slot = record;
                }
            } else {
                latest.push(record);
            }
        }
        let mut records: Vec<SwapRecord> = latest.into_iter().cloned().collect();
        records.sort_by_key(|r| r.epoch);
        TrustState { epoch, records }
    }

    /// Absorb further swaps into an existing fold (repeated compactions
    /// build on the previous checkpoint's state).
    pub fn absorb(&mut self, records: &[SwapRecord]) {
        let mut all = std::mem::take(&mut self.records);
        all.extend(records.iter().cloned());
        let folded = TrustState::fold(&all);
        self.epoch = self.epoch.max(folded.epoch);
        self.records = folded.records;
    }
}

/// Encode a [`TrustState`] as the `trust-state` section body.
pub fn encode_trust_state(state: &TrustState) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, state.epoch);
    put_varint(&mut out, state.records.len() as u64);
    for record in &state.records {
        put_str(&mut out, &record.profile);
        put_varint(&mut out, record.epoch);
        put_str(&mut out, &record.store.name);
        put_varint(&mut out, record.store.anchors.len() as u64);
        for anchor in &record.store.anchors {
            put_str(&mut out, &anchor.subject);
            put_str(&mut out, &anchor.source);
            out.push(u8::from(anchor.enabled));
            put_str(&mut out, &anchor.der_hex);
        }
    }
    out
}

/// Decode a container's `trust-state` section.
pub fn decode_trust_state(snap: &Snapshot) -> Result<TrustState, SnapError> {
    let body = snap.section(SectionId::TrustState)?;
    let mut c = Cursor::new(body, SectionId::TrustState.name());
    let epoch = c.varint()?;
    let count = c.count()?;
    let mut records = Vec::with_capacity(count);
    let mut last_epoch = 0u64;
    for _ in 0..count {
        let profile = c.str()?;
        let record_epoch = c.varint()?;
        if record_epoch <= last_epoch {
            return Err(c.malformed("fold records out of epoch order"));
        }
        last_epoch = record_epoch;
        let name = c.str()?;
        let anchor_count = c.count()?;
        let mut anchors = Vec::with_capacity(anchor_count);
        for _ in 0..anchor_count {
            anchors.push(StoreSnapshotEntry {
                subject: c.str()?,
                source: c.str()?,
                enabled: match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(c.malformed("enabled flag is not 0/1")),
                },
                der_hex: c.str()?,
            });
        }
        records.push(SwapRecord {
            profile,
            epoch: record_epoch,
            store: StoreSnapshot { name, anchors },
        });
    }
    c.finish()?;
    if epoch < last_epoch {
        return Err(SnapError::Malformed {
            section: SectionId::TrustState.name(),
            detail: "global epoch precedes a fold record",
        });
    }
    Ok(TrustState { epoch, records })
}

/// Build a checkpoint file: a delta over `base` that reuses every base
/// section unchanged and carries the folded [`TrustState`]. With no
/// base (trustd cold-started from standard profiles) the checkpoint is
/// a base-less delta holding only the trust-state.
pub fn encode_checkpoint(base: Option<&[u8]>, state: &TrustState) -> Result<DeltaSummary, SnapError> {
    let state_body = encode_trust_state(state);
    match base {
        Some(base) => {
            // Rebuild the base's full section list and pass it through
            // the delta writer: every untouched section dedups away and
            // only the trust-state rides in the checkpoint.
            let base_snap = Snapshot::parse(base.to_vec())?;
            let mut sections: Vec<(SectionId, Vec<u8>)> = Vec::new();
            for entry in base_snap.entries() {
                if entry.tag == SectionId::TrustState.tag()
                    || entry.tag == SectionId::DeltaMeta.tag()
                {
                    continue;
                }
                let id = SectionId::from_tag(entry.tag).ok_or(SnapError::BadSectionTable {
                    detail: "unknown section tag in checkpoint base",
                })?;
                sections.push((id, base_snap.entry_body(entry)?.to_vec()));
            }
            sections.push((SectionId::TrustState, state_body));
            sections.sort_by_key(|(id, _)| id.tag());
            encode_delta(&sections, base, state.epoch)
        }
        None => {
            let meta_body = encode_delta_meta(&DeltaMeta {
                base_id: DELTA_BASE_NONE,
                epoch: state.epoch,
                reused: Vec::new(),
            });
            let bytes = crate::container::assemble_tagged(&[
                (SectionId::DeltaMeta.tag(), meta_body.as_slice()),
                (SectionId::TrustState.tag(), state_body.as_slice()),
            ]);
            Ok(DeltaSummary {
                bytes,
                changed: vec![SectionId::TrustState.name()],
                reused: Vec::new(),
            })
        }
    }
}

/// Decode the trust-state out of a materialised chain (or a lone
/// checkpoint file). `Ok(None)` when the container carries no
/// `trust-state` section — a plain study snapshot.
pub fn read_checkpoint(snap: &Snapshot) -> Result<Option<TrustState>, SnapError> {
    let tag = SectionId::TrustState.tag();
    if !snap.entries().iter().any(|e| e.tag == tag) {
        return Ok(None);
    }
    decode_trust_state(snap).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::materialize;

    fn record(profile: &str, epoch: u64, subject: &str) -> SwapRecord {
        SwapRecord {
            profile: profile.to_string(),
            epoch,
            store: StoreSnapshot {
                name: format!("{profile}-store"),
                anchors: vec![StoreSnapshotEntry {
                    subject: subject.to_string(),
                    source: "system".to_string(),
                    enabled: true,
                    der_hex: "3000".to_string(),
                }],
            },
        }
    }

    #[test]
    fn fold_keeps_last_swap_per_profile_in_epoch_order() {
        let records = [
            record("a", 11, "one"),
            record("b", 12, "two"),
            record("a", 13, "three"),
        ];
        let state = TrustState::fold(&records);
        assert_eq!(state.epoch, 13);
        assert_eq!(state.records.len(), 2);
        assert_eq!(state.records[0].profile, "b");
        assert_eq!(state.records[1].profile, "a");
        assert_eq!(state.records[1].store.anchors[0].subject, "three");
    }

    #[test]
    fn trust_state_round_trips_through_a_checkpoint() {
        let state = TrustState::fold(&[record("a", 3, "x"), record("b", 7, "y")]);
        let ckpt = encode_checkpoint(None, &state).unwrap();
        let snap = Snapshot::parse(ckpt.bytes).unwrap();
        assert_eq!(read_checkpoint(&snap).unwrap(), Some(state));
    }

    #[test]
    fn checkpoint_over_base_reuses_every_base_section() {
        let base = crate::container::assemble(&[
            (SectionId::Meta, b"m".to_vec()),
            (SectionId::Corpus, b"c".to_vec()),
        ]);
        let state = TrustState::fold(&[record("a", 2, "x")]);
        let ckpt = encode_checkpoint(Some(&base), &state).unwrap();
        assert_eq!(ckpt.reused, vec!["meta", "corpus"]);
        assert_eq!(ckpt.changed, vec!["trust-state"]);

        let m = materialize(&[base, ckpt.bytes], u64::MAX).unwrap();
        let snap = Snapshot::parse(m.bytes).unwrap();
        assert_eq!(snap.section(SectionId::Meta).unwrap(), b"m");
        assert_eq!(read_checkpoint(&snap).unwrap(), Some(state));
    }

    #[test]
    fn absorb_extends_a_previous_fold() {
        let mut state = TrustState::fold(&[record("a", 4, "x")]);
        state.absorb(&[record("a", 9, "y"), record("c", 6, "z")]);
        assert_eq!(state.epoch, 9);
        assert_eq!(state.records.len(), 2);
        assert_eq!(state.records.last().unwrap().store.anchors[0].subject, "y");
    }

    #[test]
    fn hostile_trust_state_classifies_not_panics() {
        // Out-of-order fold records.
        let bad = {
            let mut out = Vec::new();
            put_varint(&mut out, 9);
            put_varint(&mut out, 2);
            for (profile, epoch) in [("a", 5u64), ("b", 5u64)] {
                put_str(&mut out, profile);
                put_varint(&mut out, epoch);
                put_str(&mut out, "s");
                put_varint(&mut out, 0);
            }
            out
        };
        let snap =
            Snapshot::parse(crate::container::assemble(&[(SectionId::TrustState, bad)])).unwrap();
        assert_eq!(
            decode_trust_state(&snap).unwrap_err().label(),
            "malformed-record"
        );
        // Truncated body.
        let snap = Snapshot::parse(crate::container::assemble(&[(
            SectionId::TrustState,
            vec![3, 1],
        )]))
        .unwrap();
        assert!(decode_trust_state(&snap).is_err());
    }
}
