//! Primality testing and prime generation.
//!
//! Miller–Rabin with a fixed deterministic base set (sound for all inputs
//! below 3.3 × 10²⁴, i.e. everything a unit test throws at it) plus random
//! witnesses for the large candidates RSA keygen draws, giving a soundness
//! error below 4⁻²⁰ per candidate.

use crate::bigint::Uint;
use crate::modular::mod_pow;
use crate::rng::SplitMix64;

/// Trial-division bound. Candidates are first sieved by every prime below
/// this before any Miller–Rabin round runs — for random 256-bit odd
/// candidates this eliminates the vast majority of composites with cheap
/// single-limb divisions.
const TRIAL_DIVISION_BOUND: u64 = 10_000;

/// Primes below [`TRIAL_DIVISION_BOUND`], computed once.
fn small_primes() -> &'static [u64] {
    use std::sync::OnceLock;
    static PRIMES: OnceLock<Vec<u64>> = OnceLock::new();
    PRIMES.get_or_init(|| {
        let n = TRIAL_DIVISION_BOUND as usize;
        let mut sieve = vec![true; n];
        sieve[0] = false;
        sieve[1] = false;
        let mut i = 2;
        while i * i < n {
            if sieve[i] {
                let mut j = i * i;
                while j < n {
                    sieve[j] = false;
                    j += i;
                }
            }
            i += 1;
        }
        (2..n as u64).filter(|&p| sieve[p as usize]).collect()
    })
}

/// Deterministic Miller–Rabin bases sufficient for n < 3,317,044,064,679,887,385,961,981.
const DETERMINISTIC_BASES: [u64; 13] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41];

/// Number of additional random Miller–Rabin rounds for large candidates.
/// Together with the 13 deterministic bases and trial division this puts
/// the per-candidate error well below 2⁻⁸⁰ for random candidates.
const RANDOM_ROUNDS: usize = 6;

/// Probabilistic primality test.
///
/// Deterministically correct for inputs that fit in the proven base-set
/// range; for larger inputs the error probability is ≤ 4^-(13+rounds).
pub fn is_prime(n: &Uint, rng: &mut SplitMix64) -> bool {
    if n < &Uint::from_u64(2) {
        return false;
    }
    if n < &Uint::from_u64(TRIAL_DIVISION_BOUND) {
        // Small inputs are decided entirely by the sieve.
        return small_primes().binary_search(&n.low_u64()).is_ok();
    }
    for &p in small_primes() {
        if n.div_rem_u64(p).1 == 0 {
            return false;
        }
    }

    // Write n-1 = d * 2^s with d odd.
    let n_minus_1 = n.sub(&Uint::one());
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }

    let witness_passes = |a: &Uint| -> bool {
        let mut x = match mod_pow(a, &d, n) {
            Ok(x) => x,
            Err(_) => return false,
        };
        if x.is_one() || x == n_minus_1 {
            return true;
        }
        for _ in 0..s - 1 {
            x = x.mul(&x).rem(n).expect("n >= 2");
            if x == n_minus_1 {
                return true;
            }
        }
        false
    };

    for &a in &DETERMINISTIC_BASES {
        let a = Uint::from_u64(a);
        // Skip bases >= n (only possible for tiny n already handled above).
        if &a >= n {
            continue;
        }
        if !witness_passes(&a) {
            return false;
        }
    }

    // Extra random witnesses for large inputs.
    if n.bit_len() > 80 {
        let two = Uint::from_u64(2);
        let upper = n.sub(&two);
        for _ in 0..RANDOM_ROUNDS {
            let a = rng.next_uint_range(&two, &upper);
            if !witness_passes(&a) {
                return false;
            }
        }
    }
    true
}

/// Generate a random prime with exactly `bits` significant bits.
///
/// The candidate stream is deterministic in `rng`, so the same seed always
/// yields the same prime. `bits` must be at least 2.
pub fn gen_prime(bits: usize, rng: &mut SplitMix64) -> Uint {
    assert!(bits >= 2, "prime must have at least 2 bits");
    loop {
        let mut candidate = rng.next_uint_exact_bits(bits);
        // Force odd (except the sole even prime, caught by is_prime on 2).
        if candidate.is_even() {
            candidate = candidate.add(&Uint::one());
            if candidate.bit_len() != bits {
                continue; // overflowed to bits+1; redraw
            }
        }
        if is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// Generate a prime `p` with exactly `bits` bits such that
/// `gcd(p - 1, e) == 1`, as RSA keygen requires for public exponent `e`.
pub fn gen_prime_coprime(bits: usize, e: &Uint, rng: &mut SplitMix64) -> Uint {
    loop {
        let p = gen_prime(bits, rng);
        if p.sub(&Uint::one()).gcd(e).is_one() {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::new(0xDEC0DE)
    }

    #[test]
    fn small_primes_and_composites() {
        let mut r = rng();
        let primes = [2u64, 3, 5, 7, 97, 257, 65537, 1_000_000_007];
        let composites = [0u64, 1, 4, 9, 91, 561, 1105, 65536, 1_000_000_006];
        for p in primes {
            assert!(is_prime(&Uint::from_u64(p), &mut r), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(&Uint::from_u64(c), &mut r), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat tests but not Miller–Rabin.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_prime(&Uint::from_u64(c), &mut r), "{c} is Carmichael");
        }
    }

    #[test]
    fn known_large_prime() {
        // 2^89 - 1 is a Mersenne prime.
        let mut r = rng();
        let m89 = Uint::one().shl(89).sub(&Uint::one());
        assert!(is_prime(&m89, &mut r));
        // 2^90 - 1 is clearly composite.
        let m90 = Uint::one().shl(90).sub(&Uint::one());
        assert!(!is_prime(&m90, &mut r));
    }

    #[test]
    fn generated_primes_have_exact_bits() {
        let mut r = rng();
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bit_len(), bits);
            assert!(is_prime(&p, &mut rng()));
        }
    }

    #[test]
    fn gen_prime_deterministic() {
        let p1 = gen_prime(64, &mut SplitMix64::new(99));
        let p2 = gen_prime(64, &mut SplitMix64::new(99));
        assert_eq!(p1, p2);
    }

    #[test]
    fn coprime_constraint_holds() {
        let mut r = rng();
        let e = Uint::from_u64(65537);
        let p = gen_prime_coprime(64, &e, &mut r);
        assert!(p.sub(&Uint::one()).gcd(&e).is_one());
    }
}
