//! Longitudinal drift: the disparity lens pointed at *time*.
//!
//! [`crate::compute`] compares ten stores at one instant; this module
//! compares one serving history at two instants. The inputs are two
//! materialised snapshots (`tangled snap materialize`, or any full
//! study snapshot): each is resolved to its profile table — the
//! standard stores from its `stores`/`eco-stores` sections (cold
//! defaults when absent, matching trustd's warm-start rules) overlaid
//! with the folded swap records its `trust-state` section carries — and
//! the two tables are diffed profile by profile under the paper's
//! anchor identity. The report is the churn between the epochs:
//! per-profile anchor add/remove lists, Jaccard drift, and the
//! trusted-by-exactly-*k* migration of every anchor that changed
//! membership.

use crate::{standard_stores, JaccardCell};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use tangled_pki::diff::diff;
use tangled_pki::store::RootStore;
use tangled_snap::{
    decode_eco_stores, decode_stores, read_checkpoint, SectionId, SnapError, Snapshot,
};
use tangled_x509::CertIdentity;

/// One profile's anchor churn between the two epochs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreDrift {
    /// The profile name.
    pub profile: String,
    /// Anchor count at the `--from` epoch.
    pub from_anchors: usize,
    /// Anchor count at the `--to` epoch.
    pub to_anchors: usize,
    /// Subjects of anchors present at `--to` but not `--from`.
    pub added: Vec<String>,
    /// Subjects of anchors present at `--from` but not `--to`.
    pub removed: Vec<String>,
    /// Jaccard similarity between the profile's two anchor sets.
    pub jaccard: JaccardCell,
}

impl StoreDrift {
    /// Did the profile's anchor set change at all?
    pub fn changed(&self) -> bool {
        !self.added.is_empty() || !self.removed.is_empty()
    }
}

/// The drift report between two materialised epochs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftReport {
    /// The `--from` side's epoch label (0 = no trust-state recorded).
    pub from_epoch: u64,
    /// The `--to` side's epoch label.
    pub to_epoch: u64,
    /// Per-profile churn for profiles present at both epochs, sorted by
    /// profile name.
    pub drifts: Vec<StoreDrift>,
    /// Profiles that exist only at the `--to` epoch, sorted.
    pub added_profiles: Vec<String>,
    /// Profiles that exist only at the `--from` epoch, sorted.
    pub removed_profiles: Vec<String>,
    /// `exactly_k_from[k]` = anchors trusted by exactly `k` profiles at
    /// the `--from` epoch.
    pub exactly_k_from: Vec<usize>,
    /// Same histogram at the `--to` epoch.
    pub exactly_k_to: Vec<usize>,
    /// Anchors whose exactly-*k* membership count changed between the
    /// epochs, as `((k_from, k_to), anchors)` sorted by the pair — the
    /// migration matrix's non-diagonal occupancy.
    pub migration: Vec<((usize, usize), usize)>,
}

/// Resolve a materialised snapshot to `(epoch, profile → store)`:
/// store sections when present (cold standard profiles otherwise),
/// overlaid with the folded trust-state.
fn epoch_state(snap: &Snapshot) -> Result<(u64, BTreeMap<String, Arc<RootStore>>), SnapError> {
    let mut profiles: BTreeMap<String, Arc<RootStore>> = BTreeMap::new();
    let has_stores = snap
        .entries()
        .iter()
        .any(|e| e.tag == SectionId::Stores.tag());
    if has_stores {
        for store in decode_stores(snap)? {
            profiles.insert(store.name().to_owned(), store);
        }
        for store in decode_eco_stores(snap)? {
            profiles.insert(store.name().to_owned(), store);
        }
    } else {
        for store in standard_stores() {
            profiles.insert(store.name().to_owned(), store);
        }
    }
    let mut epoch = 0u64;
    if let Some(state) = read_checkpoint(snap)? {
        epoch = state.epoch;
        for record in &state.records {
            let store =
                RootStore::from_snapshot(&record.store).map_err(|_| SnapError::Malformed {
                    section: SectionId::TrustState.name(),
                    detail: "folded store fails to reconstruct",
                })?;
            profiles.insert(record.profile.clone(), Arc::new(store));
        }
    }
    Ok((epoch, profiles))
}

/// Per-anchor membership counts across a profile table.
fn membership_counts(profiles: &BTreeMap<String, Arc<RootStore>>) -> BTreeMap<CertIdentity, usize> {
    let mut counts: BTreeMap<CertIdentity, usize> = BTreeMap::new();
    for store in profiles.values() {
        for id in store.identities() {
            *counts.entry(id.clone()).or_default() += 1;
        }
    }
    counts
}

/// Compute the drift between two materialised epochs.
pub fn compute_drift(from: &Snapshot, to: &Snapshot) -> Result<DriftReport, SnapError> {
    let (from_epoch, from_profiles) = epoch_state(from)?;
    let (to_epoch, to_profiles) = epoch_state(to)?;

    let mut drifts = Vec::new();
    let mut removed_profiles = Vec::new();
    for (name, from_store) in &from_profiles {
        let Some(to_store) = to_profiles.get(name) else {
            removed_profiles.push(name.clone());
            continue;
        };
        let d = diff(from_store, to_store);
        let intersection = d.common.len();
        drifts.push(StoreDrift {
            profile: name.clone(),
            from_anchors: from_store.len(),
            to_anchors: to_store.len(),
            added: d.added.iter().map(|id| id.subject.clone()).collect(),
            removed: d.removed.iter().map(|id| id.subject.clone()).collect(),
            jaccard: JaccardCell {
                intersection,
                union: from_store.len() + to_store.len() - intersection,
            },
        });
    }
    let added_profiles: Vec<String> = to_profiles
        .keys()
        .filter(|name| !from_profiles.contains_key(*name))
        .cloned()
        .collect();

    let from_counts = membership_counts(&from_profiles);
    let to_counts = membership_counts(&to_profiles);
    let mut exactly_k_from = vec![0usize; from_profiles.len() + 1];
    for k in from_counts.values() {
        exactly_k_from[*k] += 1;
    }
    let mut exactly_k_to = vec![0usize; to_profiles.len() + 1];
    for k in to_counts.values() {
        exactly_k_to[*k] += 1;
    }
    let all_ids: BTreeSet<&CertIdentity> = from_counts.keys().chain(to_counts.keys()).collect();
    let mut migration: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for id in all_ids {
        let kf = from_counts.get(id).copied().unwrap_or(0);
        let kt = to_counts.get(id).copied().unwrap_or(0);
        if kf != kt {
            *migration.entry((kf, kt)).or_default() += 1;
        }
    }

    tangled_obs::registry::add("disparity.drift_reports", 1);
    Ok(DriftReport {
        from_epoch,
        to_epoch,
        drifts,
        added_profiles,
        removed_profiles,
        exactly_k_from,
        exactly_k_to,
        migration: migration.into_iter().collect(),
    })
}

impl DriftReport {
    /// Migrated anchors in total (sum over the migration pairs).
    pub fn migrated_anchors(&self) -> usize {
        self.migration.iter().map(|(_, n)| n).sum()
    }

    /// Render the golden text report. Deterministic: every collection is
    /// name- or key-sorted.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, line: &str| {
            out.push_str(line);
            out.push('\n');
        };
        push(&mut out, "longitudinal root-store drift report");
        push(
            &mut out,
            &format!("epochs: {} -> {}", self.from_epoch, self.to_epoch),
        );
        push(&mut out, "");
        let changed: Vec<&StoreDrift> = self.drifts.iter().filter(|d| d.changed()).collect();
        push(
            &mut out,
            &format!(
                "profiles: {} compared | {} changed | +{} / -{} profiles",
                self.drifts.len(),
                changed.len(),
                self.added_profiles.len(),
                self.removed_profiles.len()
            ),
        );
        for name in &self.added_profiles {
            push(&mut out, &format!("  profile added:   {name}"));
        }
        for name in &self.removed_profiles {
            push(&mut out, &format!("  profile removed: {name}"));
        }
        for d in &changed {
            push(
                &mut out,
                &format!(
                    "  {:<12} {:>4} -> {:>4} anchors | jaccard {:.3} | +{} / -{}",
                    d.profile,
                    d.from_anchors,
                    d.to_anchors,
                    d.jaccard.value(),
                    d.added.len(),
                    d.removed.len()
                ),
            );
            for subject in &d.added {
                push(&mut out, &format!("    + {subject}"));
            }
            for subject in &d.removed {
                push(&mut out, &format!("    - {subject}"));
            }
        }
        push(&mut out, "");
        push(&mut out, "trusted-by-exactly-k anchor migration:");
        if self.migration.is_empty() {
            push(&mut out, "  none — every anchor kept its membership count");
        }
        for ((kf, kt), n) in &self.migration {
            push(&mut out, &format!("  k={kf} -> k={kt}: {n} anchors"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangled_pki::factory::CaFactory;
    use tangled_pki::trust::AnchorSource;
    use tangled_snap::{encode_checkpoint, SwapRecord, TrustState};

    fn store_of(f: &mut CaFactory, name: &str, anchors: &[&str]) -> RootStore {
        let mut s = RootStore::new(name);
        for a in anchors {
            s.add_cert(f.root(a), AnchorSource::Aosp);
        }
        s
    }

    fn checkpoint_snap(records: &[SwapRecord]) -> Snapshot {
        let state = TrustState::fold(records);
        let ckpt = encode_checkpoint(None, &state).unwrap();
        Snapshot::parse(ckpt.bytes).unwrap()
    }

    #[test]
    fn drift_reports_injected_churn_exactly() {
        let mut f = CaFactory::new();
        let before = store_of(&mut f, "canary", &["Keep CA", "Drop CA"]);
        let after = store_of(&mut f, "canary", &["Keep CA", "Gain CA"]);

        let from = checkpoint_snap(&[SwapRecord {
            profile: "canary".into(),
            epoch: 11,
            store: before.snapshot(),
        }]);
        let to = checkpoint_snap(&[
            SwapRecord {
                profile: "canary".into(),
                epoch: 11,
                store: before.snapshot(),
            },
            SwapRecord {
                profile: "canary".into(),
                epoch: 12,
                store: after.snapshot(),
            },
        ]);

        let report = compute_drift(&from, &to).unwrap();
        assert_eq!(report.from_epoch, 11);
        assert_eq!(report.to_epoch, 12);
        // Ten standard profiles plus the canary, all compared; only the
        // canary changed, by exactly the injected churn.
        assert_eq!(report.drifts.len(), 11);
        let changed: Vec<&StoreDrift> =
            report.drifts.iter().filter(|d| d.changed()).collect();
        assert_eq!(changed.len(), 1);
        let d = changed[0];
        assert_eq!(d.profile, "canary");
        assert_eq!(d.added, vec!["CN=Gain CA"]);
        assert_eq!(d.removed, vec!["CN=Drop CA"]);
        assert_eq!(
            d.jaccard,
            JaccardCell {
                intersection: 1,
                union: 3
            }
        );
        assert!(report.added_profiles.is_empty());
        assert!(report.removed_profiles.is_empty());
        // The churned anchors migrate k=1 -> k=0 and k=0 -> k=1.
        assert_eq!(report.migration, vec![((0, 1), 1), ((1, 0), 1)]);
        assert_eq!(report.migrated_anchors(), 2);

        let text = report.render();
        assert!(text.contains("+ CN=Gain CA"), "{text}");
        assert!(text.contains("- CN=Drop CA"), "{text}");
        assert!(text.contains("epochs: 11 -> 12"), "{text}");
    }

    #[test]
    fn profile_appearing_only_later_is_an_added_profile() {
        let mut f = CaFactory::new();
        let store = store_of(&mut f, "fresh", &["New CA"]);
        let from = checkpoint_snap(&[]);
        let to = checkpoint_snap(&[SwapRecord {
            profile: "fresh".into(),
            epoch: 11,
            store: store.snapshot(),
        }]);
        let report = compute_drift(&from, &to).unwrap();
        assert_eq!(report.added_profiles, vec!["fresh"]);
        assert_eq!(report.drifts.len(), 10, "standard profiles only");
        assert!(report.drifts.iter().all(|d| !d.changed()));
    }

    #[test]
    fn identical_epochs_have_zero_drift() {
        let snap_a = checkpoint_snap(&[]);
        let snap_b = checkpoint_snap(&[]);
        let report = compute_drift(&snap_a, &snap_b).unwrap();
        assert!(report.drifts.iter().all(|d| !d.changed()));
        assert!(report.migration.is_empty());
        assert_eq!(report.exactly_k_from, report.exactly_k_to);
        assert!(report.render().contains("none — every anchor"), "render");
    }
}
