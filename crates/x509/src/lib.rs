//! `tangled-x509` — X.509 v3 certificates: model, DER codec, issuance,
//! signature verification, and chain building.
//!
//! This crate implements the subset of RFC 5280 that the paper's
//! measurement pipeline touches:
//!
//! * distinguished names with the standard RDN attributes ([`name`]),
//! * the v3 extensions governing trust: basic constraints, key usage,
//!   extended key usage, subject/authority key identifiers, subject
//!   alternative names ([`extensions`]),
//! * the certificate structure itself with strict DER parse and re-encode
//!   ([`cert`]),
//! * a certificate builder used by the simulators to mint CA hierarchies
//!   and server certificates ([`builder`]),
//! * single-signature verification and validity checks ([`verify`]),
//! * chain building from a leaf through intermediates to a trust anchor
//!   ([`chain`]) — the operation behind every "how many Notary certificates
//!   does this root validate" number in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod cert;
pub mod chain;
pub mod extensions;
pub mod name;
pub mod pem;
pub mod sigmemo;
pub mod verify;

pub use builder::CertificateBuilder;
pub use cert::{CertIdentity, Certificate};
pub use chain::{ChainError, ChainKey, ChainOptions, ChainPath, ChainVerifier, VerifiedChain};
pub use name::DistinguishedName;
pub use sigmemo::{sig_memo_clear, sig_memo_counters, sig_memo_len};

use tangled_asn1::Asn1Error;
use tangled_crypto::CryptoError;

/// Errors produced while parsing or validating certificates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum X509Error {
    /// The DER structure is malformed.
    Asn1(Asn1Error),
    /// A cryptographic operation failed (bad signature, invalid key, …).
    Crypto(CryptoError),
    /// The certificate uses an algorithm this workspace does not model.
    UnsupportedAlgorithm(String),
    /// A v3 structural rule is violated (e.g. missing required field).
    Malformed(&'static str),
}

impl std::fmt::Display for X509Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            X509Error::Asn1(e) => write!(f, "DER error: {e}"),
            X509Error::Crypto(e) => write!(f, "crypto error: {e}"),
            X509Error::UnsupportedAlgorithm(oid) => write!(f, "unsupported algorithm {oid}"),
            X509Error::Malformed(what) => write!(f, "malformed certificate: {what}"),
        }
    }
}

impl std::error::Error for X509Error {}

impl From<Asn1Error> for X509Error {
    fn from(e: Asn1Error) -> Self {
        X509Error::Asn1(e)
    }
}

impl From<CryptoError> for X509Error {
    fn from(e: CryptoError) -> Self {
        X509Error::Crypto(e)
    }
}
