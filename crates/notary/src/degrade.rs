//! Raw (wire-format) view of the Notary collection, with staged,
//! quarantining re-ingest.
//!
//! The real Notary sees certificates as bytes off the network, not as
//! parsed structures — and some of those bytes are garbage. This module
//! models that boundary: [`RawEcosystem`] demotes every observed chain to
//! its DER bytes, implements [`Corruptor`] so a
//! [`FaultPlan`](tangled_faults::FaultPlan) can damage it, and
//! [`RawEcosystem::into_ecosystem`] re-ingests the bytes through staged
//! checks that *skip and record* every damaged chain instead of
//! panicking:
//!
//! 1. **parse** — empty chains and DER that does not parse;
//! 2. **duplicate** — byte-identical chains already ingested;
//! 3. **validity** — inverted windows (`notBefore > notAfter`; plain
//!    expiry is a legitimate population feature, not damage);
//! 4. **structure** — issuer-graph damage: a certificate presented as its
//!    own issuer, cycles, and presented issuers that do not match;
//! 5. **signature** — chains whose leaf no longer verifies against its
//!    presented (or self-) issuer. Only run where an issuer key is
//!    available: single wild private-CA leaves are unverifiable at
//!    ingest, so injectors never target them with signature damage.
//!
//! Every injector in the [`Corruptor`] impl is constrained to be caught
//! by one of these stages, so a quarantine ledger reconciles 1:1 with the
//! injection ledger — the invariant `tests/degraded_run.rs` checks
//! end-to-end.

use crate::ecosystem::{Ecosystem, NotaryCert, Service};
use rand::rngs::StdRng;
use std::collections::HashSet;
use std::sync::Arc;
use tangled_faults::{der, Corruptor, FaultKind, InjectedFault};
use tangled_x509::Certificate;

/// One observed chain as raw bytes: what the collection pipeline holds
/// before any parsing happens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawNotaryCert {
    /// Presented chain, leaf first, each link as DER.
    pub chain: Vec<Vec<u8>>,
    /// Session volume attributed to the certificate.
    pub sessions: u64,
    /// Service the certificate was observed on.
    pub service: Service,
}

/// Where in the staged ingest a chain was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IngestStage {
    /// Byte-level parsing.
    Parse,
    /// Byte-identical re-observation.
    Duplicate,
    /// Validity-window sanity.
    Validity,
    /// Issuer-graph sanity.
    Structure,
    /// Cryptographic verification.
    Signature,
}

impl IngestStage {
    /// Stable label for health-report keys.
    pub fn label(self) -> &'static str {
        match self {
            IngestStage::Parse => "parse",
            IngestStage::Duplicate => "duplicate",
            IngestStage::Validity => "validity",
            IngestStage::Structure => "structure",
            IngestStage::Signature => "signature",
        }
    }
}

/// Why a chain was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IngestErrorKind {
    /// The chain holds no certificates at all.
    EmptyChain,
    /// A link's DER does not parse.
    MalformedDer,
    /// A byte-identical chain was already ingested.
    DuplicateChain,
    /// A link carries `notBefore > notAfter`.
    InvertedWindow,
    /// A certificate is presented as its own (adjacent) issuer.
    SelfLoop,
    /// A certificate repeats non-adjacently in the chain.
    IssuerCycle,
    /// An adjacent presented issuer's subject does not match.
    DanglingIssuer,
    /// The leaf's signature fails against its presented or self issuer.
    BadSignature,
}

impl IngestErrorKind {
    /// Stable label for health-report keys.
    pub fn label(self) -> &'static str {
        match self {
            IngestErrorKind::EmptyChain => "empty-chain",
            IngestErrorKind::MalformedDer => "malformed-der",
            IngestErrorKind::DuplicateChain => "duplicate-chain",
            IngestErrorKind::InvertedWindow => "inverted-window",
            IngestErrorKind::SelfLoop => "self-loop",
            IngestErrorKind::IssuerCycle => "issuer-cycle",
            IngestErrorKind::DanglingIssuer => "dangling-issuer",
            IngestErrorKind::BadSignature => "bad-signature",
        }
    }
}

/// One chain the staged ingest refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestFault {
    /// Label of the rejected chain (`chain-<index>`).
    pub target: String,
    /// The stage that rejected it.
    pub stage: IngestStage,
    /// The classification it was rejected under.
    pub error: IngestErrorKind,
}

/// The whole collection in wire form: degradable chains plus the parsed
/// side-structures the faults never target.
pub struct RawEcosystem {
    /// All observed chains as bytes.
    pub certs: Vec<RawNotaryCert>,
    /// Intermediate pool, passed through untouched.
    pub intermediates: Vec<Arc<Certificate>>,
    /// Universe roots, passed through untouched.
    pub universe_roots: Vec<Arc<Certificate>>,
}

impl RawEcosystem {
    /// Demote a generated ecosystem to its wire form.
    pub fn from_ecosystem(eco: Ecosystem) -> RawEcosystem {
        RawEcosystem {
            certs: eco
                .certs
                .iter()
                .map(|c| RawNotaryCert {
                    chain: c.chain.iter().map(|l| l.to_der().to_vec()).collect(),
                    sessions: c.sessions,
                    service: c.service,
                })
                .collect(),
            intermediates: eco.intermediates,
            universe_roots: eco.universe_roots,
        }
    }

    /// Re-ingest the bytes through the staged checks. Damaged chains are
    /// skipped and recorded; survivors become the returned [`Ecosystem`].
    pub fn into_ecosystem(self) -> (Ecosystem, Vec<IngestFault>) {
        let mut certs = Vec::with_capacity(self.certs.len());
        let mut faults = Vec::new();
        let mut seen: HashSet<Vec<Vec<u8>>> = HashSet::new();
        for (index, raw) in self.certs.into_iter().enumerate() {
            let target = format!("chain-{index}");
            match ingest_chain(&raw, &mut seen) {
                Ok(chain) => certs.push(NotaryCert {
                    chain,
                    sessions: raw.sessions,
                    service: raw.service,
                }),
                Err((stage, error)) => faults.push(IngestFault {
                    target,
                    stage,
                    error,
                }),
            }
        }
        (
            Ecosystem {
                certs,
                intermediates: self.intermediates,
                universe_roots: self.universe_roots,
            },
            faults,
        )
    }
}

/// Run one raw chain through every stage. `Err` carries the first stage
/// that rejected it.
fn ingest_chain(
    raw: &RawNotaryCert,
    seen: &mut HashSet<Vec<Vec<u8>>>,
) -> Result<Vec<Arc<Certificate>>, (IngestStage, IngestErrorKind)> {
    use IngestErrorKind as E;
    use IngestStage as S;

    // 1. Parse.
    if raw.chain.is_empty() {
        return Err((S::Parse, E::EmptyChain));
    }
    let mut parsed = Vec::with_capacity(raw.chain.len());
    for link in &raw.chain {
        match Certificate::parse(link) {
            Ok(cert) => parsed.push(Arc::new(cert)),
            Err(_) => return Err((S::Parse, E::MalformedDer)),
        }
    }

    // 2. Duplicate (byte-identical full chain).
    if !seen.insert(raw.chain.clone()) {
        return Err((S::Duplicate, E::DuplicateChain));
    }

    // 3. Validity: inverted windows only — expiry is legitimate.
    for cert in &parsed {
        if cert.not_before > cert.not_after {
            return Err((S::Validity, E::InvertedWindow));
        }
    }

    // 4. Structure.
    for pair in raw.chain.windows(2) {
        if pair[0] == pair[1] {
            return Err((S::Structure, E::SelfLoop));
        }
    }
    for (i, link) in raw.chain.iter().enumerate() {
        if raw.chain[i + 1..].iter().skip(1).any(|later| later == link) {
            return Err((S::Structure, E::IssuerCycle));
        }
    }
    for pair in parsed.windows(2) {
        if pair[0].issuer.to_der() != pair[1].subject.to_der() {
            return Err((S::Structure, E::DanglingIssuer));
        }
    }

    // 5. Signature — only where an issuer key is present at ingest.
    if parsed.len() >= 2 {
        if parsed[0].verify_issued_by(&parsed[1]).is_err() {
            return Err((S::Signature, E::BadSignature));
        }
    } else if parsed[0].is_self_issued() && parsed[0].verify_issued_by(&parsed[0]).is_err() {
        return Err((S::Signature, E::BadSignature));
    }

    Ok(parsed)
}

/// Is this unit's leaf verifiable at ingest (so signature damage is
/// guaranteed detectable)?
fn verifiable(unit: &RawNotaryCert) -> bool {
    if unit.chain.len() >= 2 {
        return true;
    }
    match Certificate::parse(&unit.chain[0]) {
        Ok(cert) => cert.is_self_issued(),
        Err(_) => false,
    }
}

impl Corruptor for RawEcosystem {
    fn unit_count(&self) -> usize {
        self.certs.len()
    }

    fn supported(&self, index: usize) -> Vec<FaultKind> {
        let unit = &self.certs[index];
        if unit.chain.is_empty() {
            return Vec::new();
        }
        let mut kinds = vec![
            FaultKind::DerTruncation,
            FaultKind::DerTagMangle,
            FaultKind::ValidityInversion,
            FaultKind::IssuerSelfLoop,
            FaultKind::EmptyEntry,
            FaultKind::DuplicateEntry,
        ];
        if self.certs.len() >= 2 {
            kinds.push(FaultKind::IssuerDangling);
        }
        if unit.chain.len() >= 2 {
            kinds.push(FaultKind::IssuerCycle);
        }
        if verifiable(unit) {
            kinds.push(FaultKind::SignatureBreak);
        }
        // Bit flips need an issuer whose key is *independent* of the
        // flipped bytes: a flip inside a self-signed cert's name can turn
        // `is_self_issued` off and dodge the signature stage entirely.
        if unit.chain.len() >= 2 {
            kinds.push(FaultKind::DerBitFlip);
        }
        kinds
    }

    fn inject(&mut self, index: usize, kind: FaultKind, rng: &mut StdRng) -> Option<InjectedFault> {
        let target = format!("chain-{index}");
        let n = self.certs.len();
        match kind {
            FaultKind::DerTruncation => der::truncate(&mut self.certs[index].chain[0], rng),
            FaultKind::DerTagMangle => der::mangle_tag(&mut self.certs[index].chain[0], rng),
            FaultKind::DerBitFlip => {
                if !der::flip_tbs_bit(&mut self.certs[index].chain[0], rng) {
                    return None;
                }
            }
            FaultKind::SignatureBreak => der::break_signature(&mut self.certs[index].chain[0], rng),
            FaultKind::ValidityInversion => {
                if !der::invert_validity(&mut self.certs[index].chain[0]) {
                    return None;
                }
            }
            FaultKind::IssuerSelfLoop => {
                // Present the leaf as its own issuer: adjacent repeat.
                let leaf = self.certs[index].chain[0].clone();
                self.certs[index].chain.insert(1, leaf);
            }
            FaultKind::IssuerCycle => {
                // [leaf, issuer] → [leaf, issuer, leaf]: non-adjacent repeat.
                if self.certs[index].chain.len() < 2 {
                    return None;
                }
                let leaf = self.certs[index].chain[0].clone();
                self.certs[index].chain.push(leaf);
            }
            FaultKind::IssuerDangling => {
                // Borrow another unit's leaf as this chain's presented
                // issuer: its subject is a server name, never this leaf's
                // issuer CA, so the adjacency check always trips.
                let mut donor = (index + 1) % n;
                while donor != index && self.certs[donor].chain.is_empty() {
                    donor = (donor + 1) % n;
                }
                if donor == index {
                    return None;
                }
                let foreign = self.certs[donor].chain[0].clone();
                let chain = &mut self.certs[index].chain;
                if chain.len() >= 2 {
                    chain[1] = foreign;
                } else {
                    chain.push(foreign);
                }
            }
            FaultKind::EmptyEntry => self.certs[index].chain.clear(),
            FaultKind::DuplicateEntry => {
                let copy = self.certs[index].clone();
                self.certs.push(copy);
            }
            _ => return None,
        }
        Some(InjectedFault { kind, target })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecosystem::EcosystemSpec;
    use tangled_faults::FaultPlan;

    fn small_raw() -> RawEcosystem {
        RawEcosystem::from_ecosystem(Ecosystem::generate(&EcosystemSpec::scaled(0.02)))
    }

    #[test]
    fn clean_round_trip_preserves_everything() {
        let eco = Ecosystem::generate(&EcosystemSpec::scaled(0.02));
        let count = eco.len();
        let leaf0 = eco.certs[0].leaf().to_der().to_vec();
        let (back, faults) = RawEcosystem::from_ecosystem(eco).into_ecosystem();
        assert!(faults.is_empty(), "clean ecosystem quarantined: {faults:?}");
        assert_eq!(back.len(), count);
        assert_eq!(back.certs[0].leaf().to_der(), &leaf0[..]);
    }

    #[test]
    fn every_injected_fault_is_quarantined_exactly_once() {
        let mut raw = small_raw();
        let before = raw.certs.len();
        let ledger = FaultPlan::new(20_001).with_rate(0.3).degrade(&mut raw, 0);
        assert!(ledger.len() > 20, "rate 0.3 should hit plenty of units");
        let after = raw.certs.len();
        let (eco, faults) = raw.into_ecosystem();
        assert_eq!(
            faults.len(),
            ledger.len(),
            "quarantine must reconcile 1:1 with injection"
        );
        assert_eq!(eco.len() + faults.len(), after);
        let duplicates = ledger
            .iter()
            .filter(|f| f.kind == FaultKind::DuplicateEntry)
            .count();
        assert_eq!(after, before + duplicates);
    }

    #[test]
    fn each_kind_lands_in_its_stage() {
        use FaultKind as K;
        use IngestStage as S;
        let cases: &[(K, &[S])] = &[
            (K::DerTruncation, &[S::Parse]),
            (K::DerTagMangle, &[S::Parse]),
            (K::EmptyEntry, &[S::Parse]),
            (K::DuplicateEntry, &[S::Duplicate]),
            (K::ValidityInversion, &[S::Validity]),
            (K::IssuerSelfLoop, &[S::Structure]),
            (K::IssuerCycle, &[S::Structure]),
            (K::IssuerDangling, &[S::Structure]),
            // A TBS flip can surface at any stage up to signature.
            (K::DerBitFlip, &[S::Parse, S::Validity, S::Structure, S::Signature]),
            (K::SignatureBreak, &[S::Signature]),
        ];
        for (kind, stages) in cases {
            let mut raw = small_raw();
            let ledger = FaultPlan::new(7)
                .with_rate(1.0)
                .only(&[*kind])
                .degrade(&mut raw, 0);
            let (_, faults) = raw.into_ecosystem();
            assert_eq!(faults.len(), ledger.len(), "{kind}: ledger mismatch");
            assert!(!faults.is_empty(), "{kind}: no faults landed");
            for f in &faults {
                assert!(
                    stages.contains(&f.stage),
                    "{kind} detected at unexpected stage {:?}",
                    f.stage
                );
            }
        }
    }

    #[test]
    fn signature_damage_never_targets_unverifiable_units() {
        let raw = small_raw();
        for (i, unit) in raw.certs.iter().enumerate() {
            let kinds = raw.supported(i);
            let has_sig = kinds.contains(&FaultKind::SignatureBreak);
            assert_eq!(has_sig, verifiable(unit), "unit {i}");
            let leaf = Certificate::parse(&unit.chain[0]).unwrap();
            if unit.chain.len() == 1 && !leaf.is_self_issued() {
                assert!(!has_sig, "private-CA single {i} must skip signature faults");
            }
            // Bit flips are reserved for chains with an independent issuer.
            assert_eq!(
                kinds.contains(&FaultKind::DerBitFlip),
                unit.chain.len() >= 2,
                "unit {i}"
            );
        }
    }

    #[test]
    fn degradation_is_deterministic() {
        let run = || {
            let mut raw = small_raw();
            let ledger = FaultPlan::new(5).with_rate(0.2).degrade(&mut raw, 9);
            let (eco, faults) = raw.into_ecosystem();
            let ders: Vec<Vec<u8>> = eco
                .certs
                .iter()
                .map(|c| c.leaf().to_der().to_vec())
                .collect();
            (ledger, faults, ders)
        };
        assert_eq!(run(), run());
    }
}
