//! A small blocking client for the trustd wire protocol.
//!
//! The client mirrors the server's deadline discipline: sockets carry a
//! short read timeout ([`READ_TICK`]) and the reply wait is bounded by a
//! *consecutive idle tick* budget ([`TrustClient::set_response_ticks`]) —
//! the client-side twin of the server's `STALL_BUDGET`. A server that
//! stalls mid-reply therefore surfaces as [`ClientError::TimedOut`]
//! instead of hanging the caller forever. Any received byte resets the
//! budget, so a slow-but-live server is never misclassified.
//!
//! The client is generic over its stream so the chaos harness can run it
//! over simulated and fault-injecting transports; the `TcpStream` impl
//! adds the connect helpers.

use crate::wire::{self, FrameError, Request, Response, WireError};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Socket read-timeout tick; reply waits are counted in these.
const READ_TICK: Duration = Duration::from_millis(50);

/// Write timeout for TCP sockets: a peer that stops draining cannot
/// block the caller in `write` indefinitely.
const WRITE_BUDGET: Duration = Duration::from_secs(5);

/// Default reply budget in consecutive idle ticks (~10 s at
/// [`READ_TICK`]) — matches the server's stall budget.
const DEFAULT_RESPONSE_TICKS: u32 = 200;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server broke the wire protocol.
    Protocol(WireError),
    /// The server closed the connection instead of replying.
    Closed,
    /// The server went silent past the reply deadline.
    TimedOut,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::TimedOut => write!(f, "server exceeded the reply deadline"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Wire(e) => ClientError::Protocol(e),
        }
    }
}

/// One connection to a trustd server.
pub struct TrustClient<S = TcpStream> {
    stream: S,
    response_ticks: u32,
}

impl TrustClient<TcpStream> {
    /// Connect once, with the full deadline discipline: no-delay, a
    /// [`READ_TICK`] read timeout and a bounded write timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TrustClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(READ_TICK))?;
        stream.set_write_timeout(Some(WRITE_BUDGET))?;
        Ok(TrustClient {
            stream,
            response_ticks: DEFAULT_RESPONSE_TICKS,
        })
    }

    /// Connect with retries until `deadline` elapses — for racing a
    /// server that is still binding (CI loadgen smoke).
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        deadline: Duration,
    ) -> io::Result<TrustClient> {
        let started = Instant::now();
        loop {
            match TrustClient::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) if started.elapsed() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl<S: Read + Write> TrustClient<S> {
    /// Wrap an already-connected stream (simulated transports, chaos
    /// wrappers). The stream should report idle waits as
    /// `WouldBlock`/`TimedOut` for the reply deadline to be meaningful.
    pub fn from_stream(stream: S) -> TrustClient<S> {
        TrustClient {
            stream,
            response_ticks: DEFAULT_RESPONSE_TICKS,
        }
    }

    /// Override the reply budget (consecutive idle ticks with no reply
    /// byte). Tests use small values to fail fast.
    pub fn set_response_ticks(&mut self, ticks: u32) {
        self.response_ticks = ticks.max(1);
    }

    /// Send a request, wait for the reply.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.call_raw(&req.encode())
    }

    /// Send raw frame bytes (protocol-fault tests), wait for the reply.
    ///
    /// The wait is bounded: `read_frame` internally tolerates idle ticks
    /// *mid-frame* (stall budget), while ticks at the reply boundary —
    /// nothing received yet — surface here and are counted against
    /// [`TrustClient::set_response_ticks`].
    pub fn call_raw(&mut self, body: &[u8]) -> Result<Response, ClientError> {
        wire::write_frame(&mut self.stream, body).map_err(ClientError::Io)?;
        self.read_reply()
    }

    /// Pipelined call: write *all* request frames before reading any
    /// reply, then collect the replies in request order (the event core's
    /// per-connection ordering guarantee). A depth-N burst costs one
    /// coalesced write window and one read window instead of N strict
    /// round trips. The reply budget applies per reply — each delivered
    /// reply resets the idle clock, so a server grinding through a long
    /// batch is never misclassified as stalled.
    /// A `busy` reply short-circuits the burst: only the admission path
    /// ever sends `busy`, and it closes the connection after, so nothing
    /// else is coming — the returned vector ends with that `busy` and may
    /// be shorter than `reqs`.
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Response>, ClientError> {
        for req in reqs {
            wire::write_frame(&mut self.stream, &req.encode())
                .map_err(ClientError::Io)?;
        }
        let mut replies = Vec::with_capacity(reqs.len());
        for _ in reqs {
            let resp = self.read_reply()?;
            let shed = matches!(resp, Response::Busy);
            replies.push(resp);
            if shed {
                break;
            }
        }
        Ok(replies)
    }

    /// Wait for one reply frame under the consecutive-idle-tick budget.
    fn read_reply(&mut self) -> Result<Response, ClientError> {
        let mut idle = 0u32;
        loop {
            match wire::read_frame(&mut self.stream) {
                Ok(Some(frame)) => {
                    return Response::decode(&frame).map_err(ClientError::Protocol);
                }
                Ok(None) => return Err(ClientError::Closed),
                Err(FrameError::Io(e)) if wire::is_timeout(&e) => {
                    idle += 1;
                    if idle > self.response_ticks {
                        return Err(ClientError::TimedOut);
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Accepts the request, then never replies: every read is an idle
    /// tick.
    struct SilentServer;

    impl Read for SilentServer {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"))
        }
    }

    impl Write for SilentServer {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stalled_server_times_out_instead_of_hanging() {
        let mut client = TrustClient::from_stream(SilentServer);
        client.set_response_ticks(3);
        match client.call(&Request::Stats) {
            Err(ClientError::TimedOut) => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    /// Replies after a fixed number of idle ticks.
    struct SlowServer {
        reply: Vec<u8>,
        pos: usize,
        ticks_before_reply: u32,
    }

    impl Read for SlowServer {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.ticks_before_reply > 0 {
                self.ticks_before_reply -= 1;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
            }
            if self.pos >= self.reply.len() {
                return Ok(0);
            }
            let n = buf.len().min(self.reply.len() - self.pos);
            buf[..n].copy_from_slice(&self.reply[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl Write for SlowServer {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn slow_reply_within_budget_is_delivered() {
        let mut reply = Vec::new();
        wire::write_frame(&mut reply, &Response::Busy.encode()).unwrap();
        let mut client = TrustClient::from_stream(SlowServer {
            reply,
            pos: 0,
            ticks_before_reply: 5,
        });
        client.set_response_ticks(10);
        assert_eq!(client.call(&Request::Stats).unwrap(), Response::Busy);
    }

    /// Accepts request bytes one at a time with a `WouldBlock` between
    /// every byte — a peer whose receive window keeps filling — then
    /// replies once the full request arrived.
    struct TricklingServer {
        received: Vec<u8>,
        stall_next: bool,
        reply: Vec<u8>,
        pos: usize,
    }

    impl Read for TricklingServer {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.reply.len() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
            }
            let n = buf.len().min(self.reply.len() - self.pos);
            buf[..n].copy_from_slice(&self.reply[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl Write for TricklingServer {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.stall_next {
                self.stall_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
            }
            self.stall_next = true;
            self.received.push(buf[0]);
            Ok(1)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn pipelined_burst_survives_short_writes() {
        // A pipelined burst is far larger than one write window: every
        // byte trips a short write. The budgeted write path (the client
        // twin of the read stall budget) must still deliver the whole
        // burst; the old `write_all` would error on the first WouldBlock.
        // `busy` would short-circuit the pipelined read loop by design,
        // so the mock replies with classified errors instead.
        let canned = Response::Error {
            stage: "wire".to_owned(),
            error: "bad-json".to_owned(),
        };
        let mut reply = Vec::new();
        for _ in 0..4 {
            wire::write_frame(&mut reply, &canned.encode()).unwrap();
        }
        let mut client = TrustClient::from_stream(TricklingServer {
            received: Vec::new(),
            stall_next: false,
            reply,
            pos: 0,
        });
        client.set_response_ticks(5);
        let reqs: Vec<Request> = (0..4).map(|_| Request::Stats).collect();
        let replies = client.pipeline(&reqs).expect("burst delivered");
        assert_eq!(replies.len(), 4);
        assert!(replies.iter().all(|r| *r == canned));

        // The server really did receive all four frames intact.
        let TricklingServer { received, .. } = client.stream;
        let mut r = std::io::Cursor::new(received);
        for _ in 0..4 {
            let body = wire::read_frame(&mut r).unwrap().expect("request frame");
            assert_eq!(Request::decode(&body).unwrap(), Request::Stats);
        }
    }
}
