//! A small blocking client for the trustd wire protocol.

use crate::wire::{self, FrameError, Request, Response, WireError};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server broke the wire protocol.
    Protocol(WireError),
    /// The server closed the connection instead of replying.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Wire(e) => ClientError::Protocol(e),
        }
    }
}

/// One connection to a trustd server.
pub struct TrustClient {
    stream: TcpStream,
}

impl TrustClient {
    /// Connect once.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TrustClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TrustClient { stream })
    }

    /// Connect with retries until `deadline` elapses — for racing a
    /// server that is still binding (CI loadgen smoke).
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        deadline: Duration,
    ) -> io::Result<TrustClient> {
        let started = Instant::now();
        loop {
            match TrustClient::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) if started.elapsed() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Send a request, wait for the reply.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.call_raw(&req.encode())
    }

    /// Send raw frame bytes (protocol-fault tests), wait for the reply.
    pub fn call_raw(&mut self, body: &[u8]) -> Result<Response, ClientError> {
        wire::write_frame(&mut self.stream, body).map_err(ClientError::Io)?;
        let frame = wire::read_frame(&mut self.stream)?.ok_or(ClientError::Closed)?;
        Response::decode(&frame).map_err(ClientError::Protocol)
    }
}
