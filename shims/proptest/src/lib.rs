//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the subset of proptest this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_recursive`/`boxed`,
//! range and character-class strategies, `collection::vec`, `option::of`,
//! tuple strategies, and the `proptest!`/`prop_assert*`/`prop_oneof!`
//! macros. Generation is deterministic (fixed runner seed) and there is
//! **no shrinking** — a failing case reports its message and stops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Each `#[test] fn name(pat in strategy, ...)`
/// becomes a plain test that runs the body for the configured number of
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_functions!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_functions!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: expands the function list inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_functions {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($param:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        // Single-parameter tests expand to a one-element closure pattern
        // `|(x)|`; the parentheses are load-bearing for the multi-param
        // case, so silence the lint rather than special-case the arity.
        #[allow(unused_parens)]
        fn $name() {
            let strategy = ($($strat),+);
            let mut runner = $crate::test_runner::TestRunner::new($config);
            let outcome = runner.run(&strategy, |($($param),+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(message) = outcome {
                panic!("{}", message);
            }
        }
        $crate::__proptest_functions!(($config) $($rest)*);
    };
}

/// Assert inside a property test; failure fails the case (and the test).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: `{left:?}`\n right: `{right:?}`"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left != right`\n  both: `{left:?}`"),
            ));
        }
    }};
}

/// Reject the current case unless `cond` holds; rejected cases are
/// regenerated rather than counted as failures.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform (or weighted, with `weight => strategy`) choice among arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        crate::collection::vec(any::<u8>(), 0..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(v in small_vec()) {
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn tuples_and_patterns((a, b) in (0u8..10, 10u8..20), c in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
            let _ = c;
        }

        #[test]
        fn string_patterns_match_class(s in "[A-Za-z0-9 .-]{1,48}") {
            prop_assert!(!s.is_empty() && s.len() <= 48);
            prop_assert!(s.chars().all(|c| c.is_ascii_alphanumeric()
                || c == ' ' || c == '.' || c == '-'));
        }

        #[test]
        fn oneof_and_recursion(n in recursive_depth()) {
            prop_assert!(n <= 3);
        }

        #[test]
        fn assume_filters(v in 0u8..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }
    }

    /// Depth marker strategy: leaves are 0, each recursion level adds one.
    fn recursive_depth() -> BoxedStrategy<u32> {
        let leaf = Just(0u32);
        leaf.prop_recursive(3, 8, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(|d| d + 1),
                Just(0u32),
            ]
        })
    }

    #[test]
    fn runner_reports_failures() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4));
        let result = runner.run(&(0u8..4), |_| Err(TestCaseError::fail("boom")));
        assert!(result.is_err());
    }

    #[test]
    fn deterministic_across_runners() {
        let strat = crate::collection::vec(any::<u64>(), 3..6);
        let mut collected = Vec::new();
        for _ in 0..2 {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
            let mut values = Vec::new();
            runner
                .run(&strat, |v| {
                    values.push(v);
                    Ok(())
                })
                .unwrap();
            collected.push(values);
        }
        assert_eq!(collected[0], collected[1]);
    }
}
