//! Property tests for the X.509 layer: issuance → parse → verify across
//! randomized names, serials, validity windows and extension sets.

use proptest::prelude::*;
use std::sync::OnceLock;
use tangled_asn1::Time;
use tangled_crypto::rsa::{RsaKeyPair, SignatureAlgorithm};
use tangled_crypto::{SplitMix64, Uint};
use tangled_x509::extensions::{BasicConstraints, Extension, KeyPurpose, KeyUsage};
use tangled_x509::pem;
use tangled_x509::{Certificate, CertificateBuilder, DistinguishedName};

/// A fixed self-signed certificate for the PEM corruption properties.
fn pem_target() -> &'static Certificate {
    static CERT: OnceLock<Certificate> = OnceLock::new();
    CERT.get_or_init(|| {
        let kp = &keys()[0];
        CertificateBuilder::new(
            DistinguishedName::common_name("PEM Target CA"),
            DistinguishedName::common_name("PEM Target CA"),
            Time::date(2010, 1, 1).unwrap(),
            Time::date(2020, 1, 1).unwrap(),
        )
        .ca(None)
        .sign(kp.public_key(), kp)
        .unwrap()
    })
}

/// A small fixed key pool: key generation is the expensive step and the
/// properties under test do not depend on key variety.
fn keys() -> &'static [RsaKeyPair; 2] {
    static KEYS: OnceLock<[RsaKeyPair; 2]> = OnceLock::new();
    KEYS.get_or_init(|| {
        [
            RsaKeyPair::generate(512, &mut SplitMix64::new(11)).expect("keygen"),
            RsaKeyPair::generate(512, &mut SplitMix64::new(22)).expect("keygen"),
        ]
    })
}

fn arb_name() -> impl Strategy<Value = DistinguishedName> {
    (
        "[A-Za-z0-9 .-]{1,48}",
        proptest::option::of("[A-Za-z0-9 ]{1,24}"),
        proptest::option::of("[A-Z]{2}"),
    )
        .prop_map(|(cn, org, country)| {
            let mut b = DistinguishedName::builder().common_name(&cn);
            if let Some(o) = org {
                b = b.organizational_unit(&o);
            }
            if let Some(c) = country {
                b = b.country(&c);
            }
            b.build()
        })
}

fn arb_validity() -> impl Strategy<Value = (Time, Time)> {
    // Windows spanning the UTCTime era and the GeneralizedTime era.
    (1960i64..2150, 1u16..400).prop_map(|(year, days)| {
        let nb = Time::date(year as i32, 6, 15).expect("valid date");
        (nb, nb.plus_days(days as i64))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn build_parse_identity(
        subject in arb_name(),
        issuer in arb_name(),
        serial in 1u64..u64::MAX,
        (nb, na) in arb_validity(),
        sha1 in any::<bool>(),
        path_len in proptest::option::of(0u32..5),
        key_sel in 0usize..2,
    ) {
        let kp = &keys()[key_sel];
        let signer = &keys()[1 - key_sel];
        let alg = if sha1 {
            SignatureAlgorithm::Sha1WithRsa
        } else {
            SignatureAlgorithm::Sha256WithRsa
        };
        let cert = CertificateBuilder::new(issuer.clone(), subject.clone(), nb, na)
            .serial(Uint::from_u64(serial))
            .signature_algorithm(alg)
            .ca(path_len)
            .key_ids(kp.public_key(), signer.public_key())
            .sign(kp.public_key(), signer)
            .unwrap();

        // Parse-back equality on every field.
        let reparsed = Certificate::parse(cert.to_der()).unwrap();
        prop_assert_eq!(&reparsed, &cert);
        prop_assert_eq!(&reparsed.subject, &subject);
        prop_assert_eq!(&reparsed.issuer, &issuer);
        prop_assert_eq!(&reparsed.serial, &Uint::from_u64(serial));
        prop_assert_eq!(reparsed.not_before, nb);
        prop_assert_eq!(reparsed.not_after, na);
        prop_assert_eq!(reparsed.signature_algorithm, alg);
        prop_assert_eq!(reparsed.basic_constraints().unwrap().path_len, path_len);

        // Signature verifies with the signer, fails with the other key.
        prop_assert!(reparsed.verify_signature(signer.public_key()).is_ok());
        prop_assert!(reparsed.verify_signature(kp.public_key()).is_err()
            || kp.public_key() == signer.public_key());

        // Validity semantics.
        prop_assert!(cert.is_valid_at(nb));
        prop_assert!(cert.is_valid_at(na));
        prop_assert!(!cert.is_valid_at(na.plus_days(1)));
        prop_assert!(!cert.is_valid_at(nb.plus_days(-1)));
    }

    #[test]
    fn single_byte_corruption_never_verifies_or_panics(
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let kp = &keys()[0];
        let cert = CertificateBuilder::new(
            DistinguishedName::common_name("Corruption Target"),
            DistinguishedName::common_name("Corruption Target"),
            Time::date(2010, 1, 1).unwrap(),
            Time::date(2020, 1, 1).unwrap(),
        )
        .ca(None)
        .sign(kp.public_key(), kp)
        .unwrap();
        let mut der = cert.to_der().to_vec();
        let pos = (pos_seed % der.len() as u64) as usize;
        der[pos] ^= 1 << bit;

        // Either the parse fails, or the parsed cert differs / fails
        // signature verification. Never a panic, never a silent pass of a
        // *modified* certificate.
        if let Ok(parsed) = Certificate::parse(&der) {
            if parsed == cert {
                // The flip must have been undone by... nothing can undo a
                // single flip; parse succeeded only if it hit a tolerated
                // byte, but equality means identical DER, impossible.
                prop_assert!(false, "flipped DER parsed equal");
            } else {
                prop_assert!(parsed.verify_signature(kp.public_key()).is_err());
            }
        }
    }

    #[test]
    fn pem_fuzz_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        // Arbitrary (possibly non-UTF-8) input through every PEM entry
        // point: each must return a Result, never panic.
        let text = String::from_utf8_lossy(&bytes);
        let _ = pem::base64_decode(&text);
        let _ = pem::decode("CERTIFICATE", &text);
        let _ = pem::decode_certificate(&text);
        let _ = pem::decode_certificates(&text);
    }

    #[test]
    fn corrupted_armor_always_rejected(
        in_footer in any::<bool>(),
        offset_seed in any::<u64>(),
        replacement in "[!-+/-~]{1}",
    ) {
        // Mangle one character of the BEGIN or END armor label of a valid
        // PEM document: decode must fail, never panic, never succeed.
        let text = pem::encode_certificate(pem_target());
        let marker = if in_footer { "-----END " } else { "-----BEGIN " };
        let label_at = text.find(marker).unwrap() + marker.len();
        let offset = (offset_seed % "CERTIFICATE".len() as u64) as usize;
        let target = label_at + offset;
        let repl = replacement.chars().next().unwrap();
        prop_assume!(text.as_bytes()[target] != repl as u8);
        let mut bytes = text.into_bytes();
        bytes[target] = repl as u8;
        let corrupted = String::from_utf8(bytes).unwrap();
        prop_assert!(pem::decode("CERTIFICATE", &corrupted).is_err());
        prop_assert!(pem::decode_certificate(&corrupted).is_err());
    }

    #[test]
    fn mutated_pem_body_never_validates_silently(
        pos_seed in any::<u64>(),
        replacement in "[A-Za-z0-9+/]{1}",
    ) {
        // Swap one base64 body character for a different one: the decoded
        // DER differs, so the result must be an error or a certificate
        // that is not the original. Never a panic.
        let cert = pem_target();
        let text = pem::encode_certificate(cert);
        let body_start = text.find('\n').unwrap() + 1;
        let body_end = text.find("-----END").unwrap();
        let body_positions: Vec<usize> = (body_start..body_end)
            .filter(|&i| !text.as_bytes()[i].is_ascii_whitespace())
            .collect();
        let pos = body_positions[(pos_seed % body_positions.len() as u64) as usize];
        let repl = replacement.chars().next().unwrap();
        prop_assume!(text.as_bytes()[pos] != repl as u8);
        let mut bytes = text.into_bytes();
        bytes[pos] = repl as u8;
        let corrupted = String::from_utf8(bytes).unwrap();
        if let Ok(parsed) = pem::decode_certificate(&corrupted) {
            prop_assert_ne!(&parsed, cert);
        }
    }

    #[test]
    fn extension_sets_round_trip(
        dns_count in 0usize..5,
        ca in any::<bool>(),
        purposes in proptest::collection::vec(0u8..4, 0..4),
    ) {
        let kp = &keys()[0];
        let dns: Vec<String> = (0..dns_count)
            .map(|i| format!("host-{i}.example.org"))
            .collect();
        let purposes: Vec<KeyPurpose> = purposes
            .into_iter()
            .map(|p| match p {
                0 => KeyPurpose::ServerAuth,
                1 => KeyPurpose::ClientAuth,
                2 => KeyPurpose::CodeSigning,
                _ => KeyPurpose::EmailProtection,
            })
            .collect();
        let mut builder = CertificateBuilder::new(
            DistinguishedName::common_name("Ext Issuer"),
            DistinguishedName::common_name("Ext Subject"),
            Time::date(2012, 1, 1).unwrap(),
            Time::date(2018, 1, 1).unwrap(),
        )
        .extension(Extension::BasicConstraints(BasicConstraints {
            ca,
            path_len: None,
        }))
        .extension(Extension::KeyUsage(if ca {
            KeyUsage::ca()
        } else {
            KeyUsage::tls_server()
        }));
        if !purposes.is_empty() {
            builder = builder.extension(Extension::ExtendedKeyUsage(purposes.clone()));
        }
        if !dns.is_empty() {
            builder = builder.extension(Extension::SubjectAltName(dns.clone()));
        }
        let cert = builder.sign(kp.public_key(), kp).unwrap();
        let reparsed = Certificate::parse(cert.to_der()).unwrap();
        prop_assert_eq!(reparsed.is_ca(), ca);
        prop_assert_eq!(reparsed.dns_names(), &dns[..]);
        if purposes.is_empty() {
            prop_assert!(reparsed.extended_key_usage().is_none());
        } else {
            prop_assert_eq!(reparsed.extended_key_usage().unwrap(), &purposes[..]);
        }
    }

    #[test]
    fn base64_round_trips_canonically(
        data in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let encoded = pem::base64_encode(&data);
        let decoded = pem::base64_decode(&encoded).expect("canonical encoding decodes");
        prop_assert_eq!(decoded, data);
    }

    #[test]
    fn base64_rejects_nonzero_trailing_bits_everywhere(
        data in proptest::collection::vec(any::<u8>(), 1..96),
        extra in 1u8..4,
    ) {
        // Canonical encodings zero the bits the padding discards (4 bits
        // under `==`, 2 under `=`). OR-ing any of them back in yields a
        // distinct encoding of the same bytes, which must be rejected.
        prop_assume!(data.len() % 3 != 0);
        const ALPHABET: &[u8; 64] =
            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
        let mut bytes = pem::base64_encode(&data).into_bytes();
        let pad = bytes.iter().filter(|&&b| b == b'=').count();
        let pos = bytes.iter().rposition(|&b| b != b'=').unwrap();
        let val = ALPHABET.iter().position(|&a| a == bytes[pos]).unwrap() as u8;
        let mask = if pad == 2 { extra } else { extra & 0x03 };
        bytes[pos] = ALPHABET[(val | mask) as usize];
        let corrupted = String::from_utf8(bytes).unwrap();
        prop_assert!(pem::base64_decode(&corrupted).is_err());
    }

    #[test]
    fn base64_rejects_padding_before_final_group(
        head in proptest::collection::vec(any::<u8>(), 1..48),
        tail in proptest::collection::vec(any::<u8>(), 1..48),
    ) {
        // Splicing a padded group in front of more data puts `=` in a
        // non-final group: only ever produced by concatenating encodings,
        // never by encoding, so decode must reject it.
        prop_assume!(head.len() % 3 != 0);
        let spliced = format!("{}{}", pem::base64_encode(&head), pem::base64_encode(&tail));
        prop_assert!(pem::base64_decode(&spliced).is_err());
    }
}
