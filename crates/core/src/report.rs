//! Plain-text table rendering for experiment output.
//!
//! The benchmark harness and examples print the paper's tables with this
//! renderer: fixed-width columns, a title row, and an underline — close
//! enough to the paper's layout to compare side by side.

/// A renderable text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    /// Caption printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a title and headers.
    pub fn new(title: &str, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.to_owned(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics when the cell count does not match the header count —
    /// a malformed table is a bug in the generator, not a data error.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience for `&str` cells.
    pub fn row_str(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|c| (*c).to_owned()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns (first column left-aligned, the rest
    /// right-aligned, as in the paper's numeric tables).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line
        };
        let header = fmt_row(&self.headers);
        let rule = "-".repeat(header.len());
        out.push_str(&header);
        out.push('\n');
        out.push_str(&rule);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percentage with no decimals ("72%").
pub fn pct(frac: f64) -> String {
    format!("{:.0}%", frac * 100.0)
}

/// Format a count with thousands separators ("744,069").
pub fn thousands(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("Table X: demo", &["Store", "Certs"]);
        t.row_str(&["AOSP 4.4", "150"]);
        t.row_str(&["Mozilla", "153"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Table X: demo");
        assert!(lines[1].starts_with("Store"));
        assert!(lines[2].starts_with("---"));
        // Right-aligned numeric column.
        assert!(lines[3].ends_with("150"));
        assert!(lines[4].ends_with("153"));
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new("t", &["a", "b"]);
        t.row_str(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.723), "72%");
        assert_eq!(pct(0.0), "0%");
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_000), "1,000");
        assert_eq!(thousands(744_069), "744,069");
        assert_eq!(thousands(66_000_000_000), "66,000,000,000");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new("t", &["h"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 3);
    }
}
