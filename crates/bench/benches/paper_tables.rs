//! Tables 1–6: print each regenerated table, then benchmark its
//! generation path.
//!
//! ```text
//! cargo bench --bench paper_tables
//! ```

use criterion::black_box;
use tangled_bench::{criterion, ECOSYSTEM_SCALE, POPULATION_SCALE};
use tangled_core::tables;
use tangled_core::Study;
use tangled_pki::factory::CaFactory;
use tangled_pki::stores::ReferenceStore;

fn main() {
    eprintln!(
        "[paper_tables] generating study (population ×{POPULATION_SCALE}, \
         ecosystem ×{ECOSYSTEM_SCALE})…"
    );
    let study = Study::new(POPULATION_SCALE, ECOSYSTEM_SCALE);

    // ---- regenerate and print every table -------------------------------
    println!("{}", tables::table1().render());
    println!("{}", tables::table2(&study.population).render());
    println!("{}", tables::table3(&study.validation).render());
    println!("{}", tables::table4(&study.validation).render());
    println!("{}", tables::table5(&study.population).render());
    println!("{}", tables::table6().render());

    // ---- benchmarks ------------------------------------------------------
    let mut c = criterion();

    // Table 1: full store construction from a warm key cache (the realistic
    // cost of loading a root store).
    let mut warm_factory = CaFactory::new();
    for rs in ReferenceStore::ALL {
        rs.build_with(&mut warm_factory); // warm all keys
    }
    c.bench_function("table1_store_sizes/build_all_stores", |b| {
        b.iter(|| {
            for rs in ReferenceStore::ALL {
                black_box(rs.build_with(&mut warm_factory).len());
            }
        })
    });

    c.bench_function("table2_population/aggregate_sessions", |b| {
        b.iter(|| black_box(tables::table2_data(&study.population)))
    });

    c.bench_function("table3_validation/store_counts", |b| {
        b.iter(|| black_box(tables::table3_data(&study.validation)))
    });

    c.bench_function("table4_categories/dead_fractions", |b| {
        b.iter(|| black_box(tables::table4_data(&study.validation)))
    });

    c.bench_function("table5_rooted/device_scan", |b| {
        b.iter(|| black_box(tables::table5_data(&study.population)))
    });

    c.bench_function("table6_interception/probe_all", |b| {
        b.iter(|| black_box(tables::table6_data().intercepted.len()))
    });

    c.final_summary();
}
