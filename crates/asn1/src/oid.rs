//! OBJECT IDENTIFIER values and the dotted-decimal ↔ DER content encodings.

use crate::Asn1Error;

/// An ASN.1 OBJECT IDENTIFIER, stored as its arc components.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    arcs: Vec<u64>,
}

impl Oid {
    // --- X.500 attribute types (RFC 4519) used in distinguished names ---
    /// id-at-commonName (2.5.4.3).
    pub fn common_name() -> Oid {
        Oid::new(&[2, 5, 4, 3])
    }
    /// id-at-countryName (2.5.4.6).
    pub fn country() -> Oid {
        Oid::new(&[2, 5, 4, 6])
    }
    /// id-at-localityName (2.5.4.7).
    pub fn locality() -> Oid {
        Oid::new(&[2, 5, 4, 7])
    }
    /// id-at-stateOrProvinceName (2.5.4.8).
    pub fn state() -> Oid {
        Oid::new(&[2, 5, 4, 8])
    }
    /// id-at-organizationName (2.5.4.10).
    pub fn organization() -> Oid {
        Oid::new(&[2, 5, 4, 10])
    }
    /// id-at-organizationalUnitName (2.5.4.11).
    pub fn organizational_unit() -> Oid {
        Oid::new(&[2, 5, 4, 11])
    }
    /// pkcs-9 emailAddress (1.2.840.113549.1.9.1).
    pub fn email_address() -> Oid {
        Oid::new(&[1, 2, 840, 113549, 1, 9, 1])
    }

    // --- Signature algorithms ---
    /// sha1WithRSAEncryption (1.2.840.113549.1.1.5).
    pub fn sha1_with_rsa() -> Oid {
        Oid::new(&[1, 2, 840, 113549, 1, 1, 5])
    }
    /// sha256WithRSAEncryption (1.2.840.113549.1.1.11).
    pub fn sha256_with_rsa() -> Oid {
        Oid::new(&[1, 2, 840, 113549, 1, 1, 11])
    }
    /// rsaEncryption (1.2.840.113549.1.1.1) — SubjectPublicKeyInfo algorithm.
    pub fn rsa_encryption() -> Oid {
        Oid::new(&[1, 2, 840, 113549, 1, 1, 1])
    }

    // --- X.509 v3 extensions (RFC 5280 §4.2.1) ---
    /// id-ce-subjectKeyIdentifier (2.5.29.14).
    pub fn subject_key_identifier() -> Oid {
        Oid::new(&[2, 5, 29, 14])
    }
    /// id-ce-keyUsage (2.5.29.15).
    pub fn key_usage() -> Oid {
        Oid::new(&[2, 5, 29, 15])
    }
    /// id-ce-subjectAltName (2.5.29.17).
    pub fn subject_alt_name() -> Oid {
        Oid::new(&[2, 5, 29, 17])
    }
    /// id-ce-basicConstraints (2.5.29.19).
    pub fn basic_constraints() -> Oid {
        Oid::new(&[2, 5, 29, 19])
    }
    /// id-ce-authorityKeyIdentifier (2.5.29.35).
    pub fn authority_key_identifier() -> Oid {
        Oid::new(&[2, 5, 29, 35])
    }
    /// id-ce-extKeyUsage (2.5.29.37).
    pub fn ext_key_usage() -> Oid {
        Oid::new(&[2, 5, 29, 37])
    }

    // --- Extended key usage purposes ---
    /// id-kp-serverAuth (1.3.6.1.5.5.7.3.1).
    pub fn kp_server_auth() -> Oid {
        Oid::new(&[1, 3, 6, 1, 5, 5, 7, 3, 1])
    }
    /// id-kp-clientAuth (1.3.6.1.5.5.7.3.2).
    pub fn kp_client_auth() -> Oid {
        Oid::new(&[1, 3, 6, 1, 5, 5, 7, 3, 2])
    }
    /// id-kp-codeSigning (1.3.6.1.5.5.7.3.3).
    pub fn kp_code_signing() -> Oid {
        Oid::new(&[1, 3, 6, 1, 5, 5, 7, 3, 3])
    }
    /// id-kp-emailProtection (1.3.6.1.5.5.7.3.4).
    pub fn kp_email_protection() -> Oid {
        Oid::new(&[1, 3, 6, 1, 5, 5, 7, 3, 4])
    }

    /// Construct from arc components.
    ///
    /// # Panics
    /// Panics when fewer than two arcs are given or the first two violate
    /// the X.660 constraints (first ≤ 2; second ≤ 39 when first < 2).
    pub fn new(arcs: &[u64]) -> Oid {
        assert!(arcs.len() >= 2, "OID needs at least two arcs");
        assert!(arcs[0] <= 2, "first OID arc must be 0..=2");
        assert!(
            arcs[0] == 2 || arcs[1] <= 39,
            "second OID arc must be <= 39 under arcs 0 and 1"
        );
        Oid {
            arcs: arcs.to_vec(),
        }
    }

    /// Borrow the arc components.
    pub fn arcs(&self) -> &[u64] {
        &self.arcs
    }

    /// Parse a dotted-decimal string such as `"2.5.4.3"`.
    pub fn parse(s: &str) -> Option<Oid> {
        let arcs: Option<Vec<u64>> = s.split('.').map(|p| p.parse().ok()).collect();
        let arcs = arcs?;
        if arcs.len() < 2 || arcs[0] > 2 || (arcs[0] < 2 && arcs[1] > 39) {
            return None;
        }
        Some(Oid { arcs })
    }

    /// Encode the OID content octets (without tag/length).
    pub fn to_der_content(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.arcs.len() + 1);
        let first = self.arcs[0] * 40 + self.arcs[1];
        push_base128(&mut out, first);
        for &arc in &self.arcs[2..] {
            push_base128(&mut out, arc);
        }
        out
    }

    /// Decode from content octets.
    pub fn from_der_content(bytes: &[u8]) -> Result<Oid, Asn1Error> {
        if bytes.is_empty() {
            return Err(Asn1Error::BadValue("empty OID"));
        }
        let mut arcs = Vec::new();
        let mut value: u64 = 0;
        let mut in_progress = false;
        for (i, &b) in bytes.iter().enumerate() {
            if !in_progress && b == 0x80 {
                return Err(Asn1Error::BadValue("non-minimal OID arc"));
            }
            value = value
                .checked_shl(7)
                .and_then(|v| v.checked_add((b & 0x7f) as u64))
                .ok_or(Asn1Error::BadValue("OID arc overflow"))?;
            if b & 0x80 != 0 {
                in_progress = true;
                if i == bytes.len() - 1 {
                    return Err(Asn1Error::BadValue("truncated OID arc"));
                }
            } else {
                arcs.push(value);
                value = 0;
                in_progress = false;
            }
        }
        let first = arcs.remove(0);
        let (a0, a1) = if first < 40 {
            (0, first)
        } else if first < 80 {
            (1, first - 40)
        } else {
            (2, first - 80)
        };
        let mut full = vec![a0, a1];
        full.extend(arcs);
        Ok(Oid { arcs: full })
    }
}

fn push_base128(out: &mut Vec<u8>, mut v: u64) {
    let mut stack = [0u8; 10];
    let mut i = 0;
    loop {
        stack[i] = (v & 0x7f) as u8;
        v >>= 7;
        i += 1;
        if v == 0 {
            break;
        }
    }
    while i > 1 {
        i -= 1;
        out.push(stack[i] | 0x80);
    }
    out.push(stack[0]);
}

impl std::fmt::Display for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, arc) in self.arcs.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{arc}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encoding_common_name() {
        // 2.5.4.3 → 55 04 03
        assert_eq!(Oid::common_name().to_der_content(), vec![0x55, 0x04, 0x03]);
    }

    #[test]
    fn known_encoding_rsa() {
        // 1.2.840.113549.1.1.1 → 2a 86 48 86 f7 0d 01 01 01
        assert_eq!(
            Oid::rsa_encryption().to_der_content(),
            vec![0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x01, 0x01, 0x01]
        );
    }

    #[test]
    fn round_trip_various() {
        for oid in [
            Oid::common_name(),
            Oid::sha256_with_rsa(),
            Oid::basic_constraints(),
            Oid::kp_server_auth(),
            Oid::new(&[2, 999, 12345678]),
            Oid::new(&[0, 39]),
            Oid::new(&[1, 0]),
        ] {
            let content = oid.to_der_content();
            assert_eq!(Oid::from_der_content(&content).unwrap(), oid);
        }
    }

    #[test]
    fn parse_dotted() {
        assert_eq!(Oid::parse("2.5.4.3"), Some(Oid::common_name()));
        assert_eq!(Oid::parse("2.5.4.3").unwrap().to_string(), "2.5.4.3");
        assert_eq!(Oid::parse("3.1"), None);
        assert_eq!(Oid::parse("1.40"), None);
        assert_eq!(Oid::parse("1"), None);
        assert_eq!(Oid::parse("1.2.x"), None);
    }

    #[test]
    fn bad_der_content() {
        assert!(Oid::from_der_content(&[]).is_err());
        // Continuation bit on last byte.
        assert!(Oid::from_der_content(&[0x55, 0x84]).is_err());
        // Non-minimal leading 0x80 in an arc.
        assert!(Oid::from_der_content(&[0x55, 0x80, 0x01]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least two arcs")]
    fn too_few_arcs_panics() {
        Oid::new(&[1]);
    }

    #[test]
    fn ordering_is_lexicographic_on_arcs() {
        assert!(Oid::new(&[2, 5, 4, 3]) < Oid::new(&[2, 5, 4, 10]));
        assert!(Oid::new(&[1, 2]) < Oid::new(&[2, 5]));
    }
}
