//! The JSON value model.

use std::collections::BTreeMap;
use std::ops::Index;

/// A JSON number. Integers and floats are distinct, as in serde_json:
/// `1` and `1.0` are different numbers (and serialize differently).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite float.
    Float(f64),
}

impl Number {
    /// Lossy view as `f64` (always possible).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// View as `u64` if the number is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            _ => None,
        }
    }

    /// View as `i64` if the number is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

/// A JSON document or fragment. Objects keep keys sorted (`BTreeMap`), so
/// serialization is canonical and equality is structural.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// View as `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// View as `u64` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// View as `i64` if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// View as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// View as `bool` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// View as an array if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// View as an object if this is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

// ---------------------------------------------------------------------------
// Conversions into Value.
// ---------------------------------------------------------------------------

macro_rules! impl_from_unsigned {
    ($($ty:ty),+) => {$(
        impl From<$ty> for Value {
            fn from(n: $ty) -> Value {
                Value::Number(Number::PosInt(n as u64))
            }
        }
    )+};
}

macro_rules! impl_from_signed {
    ($($ty:ty),+) => {$(
        impl From<$ty> for Value {
            fn from(n: $ty) -> Value {
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n as i64))
                }
            }
        }
    )+};
}

impl_from_unsigned!(u8, u16, u32, u64, usize);
impl_from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::Float(f))
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::Number(Number::Float(f as f64))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

/// References to copyable primitives convert like the primitive itself
/// (`.iter()`-style pipelines hand the `json!` macro `&usize` etc.).
macro_rules! impl_from_ref {
    ($($ty:ty),+) => {$(
        impl From<&$ty> for Value {
            fn from(v: &$ty) -> Value {
                (*v).into()
            }
        }
    )+};
}

impl_from_ref!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<V: Into<Value>> From<BTreeMap<String, V>> for Value {
    fn from(map: BTreeMap<String, V>) -> Value {
        Value::Object(map.into_iter().map(|(k, v)| (k, v.into())).collect())
    }
}

// ---------------------------------------------------------------------------
// Comparisons against plain Rust values (handy in tests).
// ---------------------------------------------------------------------------

macro_rules! impl_eq_unsigned {
    ($($ty:ty),+) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                matches!(self, Value::Number(Number::PosInt(n)) if *n == *other as u64)
            }
        }
    )+};
}

macro_rules! impl_eq_signed {
    ($($ty:ty),+) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                match self {
                    Value::Number(Number::PosInt(n)) => {
                        *other >= 0 && *n == *other as u64
                    }
                    Value::Number(Number::NegInt(n)) => *n == *other as i64,
                    _ => false,
                }
            }
        }
    )+};
}

impl_eq_unsigned!(u8, u16, u32, u64, usize);
impl_eq_signed!(i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(Number::Float(f)) if f == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}
