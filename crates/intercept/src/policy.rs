//! The Reality Mine proxy policy of Table 6.

/// A probed endpoint: domain plus port.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Target {
    /// Domain name.
    pub domain: String,
    /// TCP port.
    pub port: u16,
}

impl Target {
    /// Construct a target.
    pub fn new(domain: &str, port: u16) -> Target {
        Target {
            domain: domain.to_owned(),
            port,
        }
    }

    /// Parse `"domain:port"`.
    pub fn parse(s: &str) -> Option<Target> {
        let (domain, port) = s.rsplit_once(':')?;
        Some(Target {
            domain: domain.to_owned(),
            port: port.parse().ok()?,
        })
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.domain, self.port)
    }
}

/// Table 6, left column: endpoints the proxy intercepts.
pub const INTERCEPTED_DOMAINS: [&str; 12] = [
    "gmail.com:443",
    "mail.google.com:443",
    "mail.yahoo.com:443",
    "orcart.facebook.com:443",
    "www.bankofamerica.com:443",
    "www.chase.com:443",
    "www.hsbc.com:443",
    "www.icsi.berkeley.edu:443",
    "www.outlook.com:443",
    "www.skype.com:443",
    "www.viber.com:443",
    "www.yahoo.com:443",
];

/// Table 6, right column: endpoints the proxy passes through untouched —
/// Google's SUPL service, Facebook chat, and the cert-pinned front doors
/// of Facebook, Twitter and Google.
pub const WHITELISTED_DOMAINS: [&str; 9] = [
    "google-analytics.com:443",
    "maps.google.com:443",
    "orcart.facebook.com:8883",
    "play.google.com:443",
    "supl.google.com:7275",
    "www.facebook.com:443",
    "www.google.com:443",
    "www.google.co.uk:443",
    "www.twitter.com:443",
];

/// What the proxy does with a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyAction {
    /// Re-sign the chain and inspect the plaintext.
    Intercept,
    /// Tunnel the original bytes through untouched.
    PassThrough,
}

/// The middlebox policy: which targets are re-signed.
#[derive(Debug, Clone)]
pub struct ProxyPolicy {
    whitelist: std::collections::HashSet<Target>,
    intercept_all_https: bool,
}

impl ProxyPolicy {
    /// The Reality Mine policy of Table 6: intercept HTTP(S) ports except
    /// for the whitelisted endpoints; pass through everything else.
    pub fn reality_mine() -> ProxyPolicy {
        ProxyPolicy {
            whitelist: WHITELISTED_DOMAINS
                .iter()
                .filter_map(|s| Target::parse(s))
                .collect(),
            intercept_all_https: true,
        }
    }

    /// A policy that never intercepts (control case).
    pub fn transparent() -> ProxyPolicy {
        ProxyPolicy {
            whitelist: std::collections::HashSet::new(),
            intercept_all_https: false,
        }
    }

    /// Decide the action for a target. The proxy "listens on ports 80 and
    /// 443" — other ports pass through regardless.
    pub fn action(&self, target: &Target) -> ProxyAction {
        if !self.intercept_all_https {
            return ProxyAction::PassThrough;
        }
        if self.whitelist.contains(target) {
            return ProxyAction::PassThrough;
        }
        match target.port {
            80 | 443 => ProxyAction::Intercept,
            _ => ProxyAction::PassThrough,
        }
    }

    /// Add a target to the whitelist.
    pub fn whitelist_target(&mut self, target: Target) {
        self.whitelist.insert(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_lists_parse() {
        assert_eq!(INTERCEPTED_DOMAINS.len(), 12);
        assert_eq!(WHITELISTED_DOMAINS.len(), 9);
        for s in INTERCEPTED_DOMAINS.iter().chain(&WHITELISTED_DOMAINS) {
            assert!(Target::parse(s).is_some(), "{s}");
        }
    }

    #[test]
    fn reality_mine_policy_matches_table6() {
        let policy = ProxyPolicy::reality_mine();
        for s in INTERCEPTED_DOMAINS {
            let t = Target::parse(s).unwrap();
            assert_eq!(policy.action(&t), ProxyAction::Intercept, "{s}");
        }
        for s in WHITELISTED_DOMAINS {
            let t = Target::parse(s).unwrap();
            assert_eq!(policy.action(&t), ProxyAction::PassThrough, "{s}");
        }
    }

    #[test]
    fn non_http_ports_pass_through() {
        let policy = ProxyPolicy::reality_mine();
        // SUPL and MQTT-style ports pass even when not whitelisted.
        assert_eq!(
            policy.action(&Target::new("supl.vendor.example", 7275)),
            ProxyAction::PassThrough
        );
        assert_eq!(
            policy.action(&Target::new("chat.example", 8883)),
            ProxyAction::PassThrough
        );
        // But 443 on an unknown domain is fair game.
        assert_eq!(
            policy.action(&Target::new("anything.example", 443)),
            ProxyAction::Intercept
        );
    }

    #[test]
    fn transparent_policy_never_intercepts() {
        let policy = ProxyPolicy::transparent();
        assert_eq!(
            policy.action(&Target::parse("gmail.com:443").unwrap()),
            ProxyAction::PassThrough
        );
    }

    #[test]
    fn whitelist_is_port_specific() {
        let policy = ProxyPolicy::reality_mine();
        // orcart.facebook.com appears in BOTH Table 6 columns: port 8883
        // (chat) is whitelisted, port 443 is intercepted. The whitelist
        // entry must not bleed across ports.
        assert_eq!(
            policy.action(&Target::new("orcart.facebook.com", 8883)),
            ProxyAction::PassThrough
        );
        assert_eq!(
            policy.action(&Target::new("orcart.facebook.com", 443)),
            ProxyAction::Intercept
        );
        // And a whitelisted 443 endpoint is NOT whitelisted on port 80.
        assert_eq!(
            policy.action(&Target::new("www.facebook.com", 80)),
            ProxyAction::Intercept
        );
    }

    #[test]
    fn whitelist_wins_over_interception() {
        // Per Table 6 a pinned endpoint must pass through even when it
        // would otherwise be intercepted: add an INTERCEPTED domain to the
        // whitelist and the whitelist must win.
        let mut policy = ProxyPolicy::reality_mine();
        let t = Target::parse("www.chase.com:443").unwrap();
        assert_eq!(policy.action(&t), ProxyAction::Intercept);
        policy.whitelist_target(t.clone());
        assert_eq!(policy.action(&t), ProxyAction::PassThrough);
    }

    #[test]
    fn overlapping_whitelist_entries_are_idempotent() {
        // Duplicate and near-duplicate entries (same domain, several
        // ports) coexist without widening or narrowing each other.
        let mut policy = ProxyPolicy::reality_mine();
        policy.whitelist_target(Target::new("dup.example", 443));
        policy.whitelist_target(Target::new("dup.example", 443));
        policy.whitelist_target(Target::new("dup.example", 80));
        assert_eq!(
            policy.action(&Target::new("dup.example", 443)),
            ProxyAction::PassThrough
        );
        assert_eq!(
            policy.action(&Target::new("dup.example", 80)),
            ProxyAction::PassThrough
        );
        // A sibling subdomain gains nothing from the parent's entries.
        assert_eq!(
            policy.action(&Target::new("sub.dup.example", 443)),
            ProxyAction::Intercept
        );
    }

    #[test]
    fn target_display_round_trip() {
        let t = Target::new("www.yahoo.com", 443);
        assert_eq!(Target::parse(&t.to_string()), Some(t));
        assert_eq!(Target::parse("no-port"), None);
        assert_eq!(Target::parse("bad:port:x"), None);
    }
}
