//! Process-wide signature-verification memo.
//!
//! RSA signature verification is the dominant cost of every chain the
//! workspace builds, and the same verification recurs constantly: each of
//! the six reference stores re-anchors the same Notary chains, every
//! degraded-store rebuild re-checks the same leaf→issuer edges, and trustd
//! replays validate chains the offline study already verified. The memo
//! collapses all of those into one modular exponentiation per distinct
//! (issuer key, signed message) pair, process-wide.
//!
//! **Key.** `(SHA-256 of the issuer SPKI, SHA-256 of algorithm ‖ TBS ‖
//! signature)`. Including the signature bytes in the message digest is
//! load-bearing: the fault engine can corrupt a certificate's signature
//! while leaving its TBS intact, and a memo keyed on the TBS alone would
//! replay the intact certificate's verdict for the corrupted one.
//!
//! **Determinism.** A verification outcome is a pure function of the key,
//! so cache hits are unobservable in results — only in wall time. The
//! stripes are bounded (flush-at-cap) so a long-lived server cannot grow
//! the memo without bound.

use crate::X509Error;
use std::sync::OnceLock;
use tangled_crypto::rsa::{RsaPublicKey, SignatureAlgorithm};
use tangled_crypto::sha256::sha256;
use tangled_exec::StripedMap;

/// Memo key: (issuer SPKI digest, signed-message digest).
type SigKey = ([u8; 32], [u8; 32]);

/// Stripe count for the process-wide memo.
const STRIPES: usize = 64;

/// Per-stripe entry bound: 64 stripes × 16 Ki entries ≈ 1 M verdicts
/// (~100 MB worst case) before any stripe flushes — far above a full-scale
/// study run, a hard bound for a long-lived server.
const STRIPE_CAP: usize = 16 * 1024;

fn memo() -> &'static StripedMap<SigKey, Result<(), X509Error>> {
    static MEMO: OnceLock<StripedMap<SigKey, Result<(), X509Error>>> = OnceLock::new();
    MEMO.get_or_init(|| StripedMap::bounded(STRIPES, STRIPE_CAP))
}

/// Digest of an RSA public key's content (modulus ‖ exponent, each
/// length-prefixed so concatenation ambiguity cannot alias two keys).
fn spki_digest(key: &RsaPublicKey) -> [u8; 32] {
    let modulus = key.modulus.to_be_bytes();
    let exponent = key.exponent.to_be_bytes();
    let mut data = Vec::with_capacity(16 + modulus.len() + exponent.len());
    data.extend_from_slice(&(modulus.len() as u64).to_be_bytes());
    data.extend_from_slice(&modulus);
    data.extend_from_slice(&(exponent.len() as u64).to_be_bytes());
    data.extend_from_slice(&exponent);
    sha256(&data)
}

fn message_digest(algorithm: SignatureAlgorithm, tbs: &[u8], signature: &[u8]) -> [u8; 32] {
    let mut data = Vec::with_capacity(17 + tbs.len() + signature.len());
    data.push(match algorithm {
        SignatureAlgorithm::Sha256WithRsa => 1,
        SignatureAlgorithm::Sha1WithRsa => 2,
    });
    data.extend_from_slice(&(tbs.len() as u64).to_be_bytes());
    data.extend_from_slice(tbs);
    data.extend_from_slice(signature);
    sha256(&data)
}

/// Verify `signature` over `tbs` with `key`, replaying a memoised verdict
/// when this exact verification has run before anywhere in the process.
pub fn verify_memoised(
    key: &RsaPublicKey,
    algorithm: SignatureAlgorithm,
    tbs: &[u8],
    signature: &[u8],
) -> Result<(), X509Error> {
    let memo_key = (spki_digest(key), message_digest(algorithm, tbs, signature));
    memo().get_or_insert_with(memo_key, || {
        key.verify(algorithm, tbs, signature).map_err(X509Error::Crypto)
    })
}

/// Lifetime (hits, misses) of the process-wide memo. A hit is a modular
/// exponentiation that did not run.
pub fn sig_memo_counters() -> (u64, u64) {
    memo().counters()
}

/// Entries currently memoised.
pub fn sig_memo_len() -> usize {
    memo().len()
}

/// Drop every memoised verdict (counters survive). Benchmarks use this to
/// measure cold-path cost honestly.
pub fn sig_memo_clear() {
    memo().clear()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CertificateBuilder;
    use crate::name::DistinguishedName;
    use std::sync::Arc;
    use tangled_asn1::Time;
    use tangled_crypto::{SplitMix64, Uint};

    /// Distinct key seeds per caller: the memo is process-global, so tests
    /// sharing one pair would see each other's entries.
    fn cert_pair(seed: u64) -> (Arc<crate::Certificate>, Arc<crate::Certificate>) {
        let root_kp =
            tangled_crypto::rsa::RsaKeyPair::generate(512, &mut SplitMix64::new(seed)).unwrap();
        let leaf_kp =
            tangled_crypto::rsa::RsaKeyPair::generate(512, &mut SplitMix64::new(seed + 1)).unwrap();
        let root = Arc::new(
            CertificateBuilder::self_signed_root(
                DistinguishedName::common_name("Memo Root"),
                Time::date(2010, 1, 1).unwrap(),
                Time::date(2030, 1, 1).unwrap(),
                &root_kp,
                Uint::one(),
            )
            .unwrap(),
        );
        let leaf = Arc::new(
            CertificateBuilder::new(
                root.subject.clone(),
                DistinguishedName::common_name("memo.example"),
                Time::date(2010, 1, 1).unwrap(),
                Time::date(2030, 1, 1).unwrap(),
            )
            .serial(Uint::from_u64(2))
            .tls_server(vec!["memo.example".into()])
            .sign(leaf_kp.public_key(), &root_kp)
            .unwrap(),
        );
        (root, leaf)
    }

    #[test]
    fn repeat_verification_hits_the_memo() {
        // Counters are process-global and other tests verify concurrently,
        // so deltas are lower bounds: this pair's key is unique to the
        // test, guaranteeing it contributed one miss then one hit.
        let (root, leaf) = cert_pair(7001);
        let (_, misses_before) = sig_memo_counters();
        leaf.verify_issued_by(&root).unwrap();
        let (hits_mid, misses_mid) = sig_memo_counters();
        assert!(misses_mid > misses_before, "first check computes");
        leaf.verify_issued_by(&root).unwrap();
        let (hits_after, _) = sig_memo_counters();
        assert!(hits_after > hits_mid, "second check replays");
    }

    #[test]
    fn corrupted_signature_is_a_distinct_memo_entry() {
        let (root, leaf) = cert_pair(7101);
        leaf.verify_issued_by(&root).unwrap();
        // Same TBS, flipped signature bit: must fail — a (SPKI, TBS)-only
        // key would wrongly replay the success.
        let mut bad = (*leaf).clone();
        let mut sig = bad.signature.clone();
        sig[0] ^= 0x01;
        bad.signature = sig;
        assert!(bad.verify_signature(&root.public_key).is_err());
        // And the failure itself memoises: verifying again still fails.
        assert!(bad.verify_signature(&root.public_key).is_err());
    }

    #[test]
    fn wrong_key_is_a_distinct_memo_entry() {
        let (root, leaf) = cert_pair(7201);
        leaf.verify_signature(&root.public_key).unwrap();
        assert!(leaf.verify_signature(&leaf.public_key).is_err());
    }

    #[test]
    fn spki_digest_separates_prefix_aliases() {
        let a = RsaPublicKey {
            modulus: Uint::from_u64(0x0102),
            exponent: Uint::from_u64(0x03),
        };
        let b = RsaPublicKey {
            modulus: Uint::from_u64(0x01),
            exponent: Uint::from_u64(0x0203),
        };
        assert_ne!(spki_digest(&a), spki_digest(&b));
    }
}
