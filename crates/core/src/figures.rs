//! Generators for Figures 1–3 of the paper.
//!
//! Each figure function returns the plotted series as plain data (points,
//! matrix cells, ECDF curves) plus an ASCII rendering used by the bench
//! harness; no plotting library is needed to compare shapes.

use crate::classify::class_index;
use crate::report::TextTable;
use std::collections::HashMap;
use tangled_netalyzr::Population;
use tangled_notary::coverage::{dead_fraction, ecdf, EcdfPoint};
use tangled_notary::ValidationIndex;
use tangled_pki::extras::Figure2Class;
use tangled_pki::trust::AnchorSource;
use tangled_pki::vocab::{AndroidVersion, Figure2Row, Manufacturer};
use tangled_x509::CertIdentity;

// ---------------------------------------------------------------------------
// Figure 1 — scatter of AOSP vs additional certificates.
// ---------------------------------------------------------------------------

/// One aggregated scatter point of Figure 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig1Point {
    /// Handset manufacturer.
    pub manufacturer: Manufacturer,
    /// Android version (the figure's facet).
    pub version: AndroidVersion,
    /// Number of AOSP certificates present on the device (x axis).
    pub aosp_certs: usize,
    /// Number of additional certificates (y axis).
    pub additional: usize,
    /// Number of sessions at this point (marker size).
    pub sessions: u32,
}

/// Compute the Figure 1 point set.
pub fn figure1(pop: &Population) -> Vec<Fig1Point> {
    let counts = pop.sessions_per_device();
    let mut agg: HashMap<(Manufacturer, AndroidVersion, usize, usize), u32> = HashMap::new();
    for (i, d) in pop.devices.iter().enumerate() {
        if counts[i] == 0 {
            continue;
        }
        let key = (
            d.manufacturer,
            d.os_version,
            d.aosp_cert_count(),
            d.additional_count(),
        );
        *agg.entry(key).or_default() += counts[i];
    }
    let mut points: Vec<Fig1Point> = agg
        .into_iter()
        .map(|((manufacturer, version, aosp_certs, additional), sessions)| Fig1Point {
            manufacturer,
            version,
            aosp_certs,
            additional,
            sessions,
        })
        .collect();
    points.sort_by_key(|p| (p.version, p.manufacturer, p.aosp_certs, p.additional));
    points
}

/// Summary of Figure 1's headline claims, for tests and the harness.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Summary {
    /// Fraction of sessions with ≥1 additional certificate (paper: 39 %).
    pub extended_session_fraction: f64,
    /// Per-(manufacturer, version) fraction of sessions with >40
    /// additions.
    pub big_bundle_rows: Vec<(Manufacturer, AndroidVersion, f64)>,
    /// Devices missing AOSP certificates (paper: 5).
    pub missing_devices: usize,
}

/// Summarize Figure 1.
pub fn figure1_summary(pop: &Population) -> Fig1Summary {
    let points = figure1(pop);
    let total: u32 = points.iter().map(|p| p.sessions).sum();
    let extended: u32 = points
        .iter()
        .filter(|p| p.additional > 0)
        .map(|p| p.sessions)
        .sum();
    let mut per_row: HashMap<(Manufacturer, AndroidVersion), (u32, u32)> = HashMap::new();
    for p in &points {
        let e = per_row.entry((p.manufacturer, p.version)).or_default();
        e.1 += p.sessions;
        if p.additional > 40 {
            e.0 += p.sessions;
        }
    }
    let mut big_bundle_rows: Vec<(Manufacturer, AndroidVersion, f64)> = per_row
        .into_iter()
        .map(|((m, v), (big, all))| (m, v, big as f64 / all.max(1) as f64))
        .collect();
    big_bundle_rows.sort_by_key(|&(m, v, _)| (m, v));
    Fig1Summary {
        extended_session_fraction: extended as f64 / total.max(1) as f64,
        big_bundle_rows,
        missing_devices: pop
            .devices
            .iter()
            .filter(|d| d.is_missing_aosp_certs())
            .count(),
    }
}

/// ASCII rendering of the Figure 1 point set (top rows by sessions).
pub fn figure1_render(pop: &Population, max_rows: usize) -> String {
    let mut points = figure1(pop);
    points.sort_by_key(|p| std::cmp::Reverse(p.sessions));
    let mut t = TextTable::new(
        "Figure 1: sessions per (manufacturer, version, AOSP certs, additional certs).",
        &["Manufacturer", "Version", "AOSP certs", "Additional", "Sessions"],
    );
    for p in points.iter().take(max_rows) {
        t.row(&[
            p.manufacturer.label().to_owned(),
            p.version.label().to_owned(),
            p.aosp_certs.to_string(),
            p.additional.to_string(),
            p.sessions.to_string(),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------------
// Figure 2 — per-row certificate presence matrix.
// ---------------------------------------------------------------------------

/// One cell of the Figure 2 matrix.
#[derive(Debug, Clone)]
pub struct Fig2Cell {
    /// The figure row (manufacturer × version, or operator).
    pub row: Figure2Row,
    /// Certificate subject (short form).
    pub cert: String,
    /// Legend class of the certificate.
    pub class: Figure2Class,
    /// Sessions with this certificate / sessions with modified stores in
    /// this row (the paper's marker size).
    pub frequency: f64,
}

/// Compute the Figure 2 matrix from the population.
pub fn figure2(pop: &Population) -> Vec<Fig2Cell> {
    let class_idx = class_index();
    let counts = pop.sessions_per_device();
    // Per row: (sessions with modified stores, per-cert session counts).
    let mut per_row: HashMap<Figure2Row, (u32, HashMap<CertIdentity, u32>)> = HashMap::new();

    for (i, d) in pop.devices.iter().enumerate() {
        if counts[i] == 0 || !d.has_extended_store() || d.rooted {
            continue;
        }
        let additions: Vec<(CertIdentity, AnchorSource)> = d
            .additional_certs()
            .iter()
            .map(|a| (a.identity(), a.source))
            .collect();
        let mut rows = vec![Figure2Row::Mfr(d.manufacturer, d.os_version)];
        rows.push(Figure2Row::Op(d.operator));
        for row in rows {
            let entry = per_row.entry(row).or_default();
            entry.0 += counts[i];
            for (id, _) in &additions {
                *entry.1.entry(id.clone()).or_default() += counts[i];
            }
        }
    }

    let mut cells = Vec::new();
    for row in Figure2Row::paper_rows() {
        let Some((total, certs)) = per_row.get(&row) else {
            continue;
        };
        if *total == 0 {
            continue;
        }
        for (id, n) in certs {
            let class = class_idx
                .get(id)
                .copied()
                .unwrap_or(Figure2Class::NotRecorded);
            cells.push(Fig2Cell {
                row,
                cert: id.subject.clone(),
                class,
                frequency: *n as f64 / *total as f64,
            });
        }
    }
    cells.sort_by(|a, b| {
        a.row
            .label()
            .cmp(&b.row.label())
            .then(a.cert.cmp(&b.cert))
    });
    cells
}

/// Class distribution over the distinct certificates of the matrix —
/// §5.1's 6.7 / 16.2 / 37.1 / 40.0 split.
pub fn figure2_class_distribution(cells: &[Fig2Cell]) -> HashMap<Figure2Class, f64> {
    let mut seen: HashMap<&str, Figure2Class> = HashMap::new();
    for c in cells {
        seen.insert(c.cert.as_str(), c.class);
    }
    let total = seen.len().max(1) as f64;
    let mut counts: HashMap<Figure2Class, usize> = HashMap::new();
    for class in seen.values() {
        *counts.entry(*class).or_default() += 1;
    }
    counts
        .into_iter()
        .map(|(k, v)| (k, v as f64 / total))
        .collect()
}

/// ASCII rendering of the strongest matrix cells.
pub fn figure2_render(pop: &Population, max_rows: usize) -> String {
    let mut cells = figure2(pop);
    cells.sort_by(|a, b| b.frequency.total_cmp(&a.frequency));
    let mut t = TextTable::new(
        "Figure 2: certificate presence per manufacturer/operator row.",
        &["Row", "Certificate", "Class", "Frequency"],
    );
    for c in cells.iter().take(max_rows) {
        t.row(&[
            c.row.label(),
            c.cert.chars().take(50).collect(),
            c.class.label().to_owned(),
            format!("{:.2}", c.frequency),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------------
// Figure 3 — ECDFs of per-root validation counts.
// ---------------------------------------------------------------------------

/// One Figure 3 series.
#[derive(Debug, Clone)]
pub struct Fig3Series {
    /// Legend label (matching the paper's).
    pub label: &'static str,
    /// Per-root validation counts.
    pub counts: Vec<u32>,
    /// The ECDF over `counts`.
    pub ecdf: Vec<EcdfPoint>,
    /// Fraction of roots validating nothing (the y-axis offset).
    pub dead_fraction: f64,
}

/// Compute the seven Figure 3 series.
pub fn figure3(validation: &ValidationIndex) -> Vec<Fig3Series> {
    crate::tables::table4_categories()
        .into_iter()
        .filter_map(|(label, ids)| {
            // Figure 3 plots a subset of the Table 4 categories.
            let label = match label {
                "AOSP 4.1 certs" => "AOSP 4.1",
                "AOSP 4.4 certs" => "AOSP 4.4",
                "AOSP 4.4 and Mozilla root certs" => "AOSP 4.4 and Mozilla root certs",
                "Aggregated Android root certs" => "Aggregated Android root certs",
                "Mozilla root store certs" => "Mozilla",
                "iOS 7 root store certs" => "iOS7",
                "Non AOSP and Non Mozilla root certs" => "Non AOSP and non Mozilla Android certs",
                "Non AOSP root certs found on Mozilla's" => "Non AOSP Android certs",
                _ => return None,
            };
            let counts = validation.counts_for(ids.iter());
            let e = ecdf(&counts);
            let dead = dead_fraction(&counts);
            Some(Fig3Series {
                label,
                counts,
                ecdf: e,
                dead_fraction: dead,
            })
        })
        .collect()
}

/// ASCII rendering: per-series dead fraction and quantiles.
pub fn figure3_render(validation: &ValidationIndex) -> String {
    let mut t = TextTable::new(
        "Figure 3: per-root validation count ECDFs (dead fraction = y-offset at 0).",
        &["Series", "Roots", "Dead", "Median", "Max"],
    );
    for s in figure3(validation) {
        let mut sorted = s.counts.clone();
        sorted.sort_unstable();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0);
        let max = sorted.last().copied().unwrap_or(0);
        t.row(&[
            s.label.to_owned(),
            s.counts.len().to_string(),
            crate::report::pct(s.dead_fraction),
            median.to_string(),
            max.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::Study;
    use tangled_netalyzr::PopulationSpec;

    fn pop() -> Population {
        Population::generate(&PopulationSpec::scaled(0.5))
    }

    #[test]
    fn figure1_extended_fraction_and_big_bundles() {
        let p = pop();
        let summary = figure1_summary(&p);
        assert!(
            (0.30..=0.48).contains(&summary.extended_session_fraction),
            "extended {:.3}",
            summary.extended_session_fraction
        );
        assert_eq!(summary.missing_devices, 5);
        // The paper's heavy rows exceed 40 additions on >10% of sessions.
        let rate = |m: Manufacturer, v: AndroidVersion| -> f64 {
            summary
                .big_bundle_rows
                .iter()
                .find(|&&(rm, rv, _)| rm == m && rv == v)
                .map(|&(_, _, f)| f)
                .unwrap_or(0.0)
        };
        assert!(rate(Manufacturer::Htc, AndroidVersion::V4_1) > 0.10);
        assert!(rate(Manufacturer::Motorola, AndroidVersion::V4_1) > 0.10);
        assert!(rate(Manufacturer::Samsung, AndroidVersion::V4_4) > 0.10);
        // Near-stock rows have none.
        assert!(rate(Manufacturer::Asus, AndroidVersion::V4_3) < 0.01);
        assert!(rate(Manufacturer::Motorola, AndroidVersion::V4_4) < 0.01);
    }

    #[test]
    fn figure1_x_axis_bounded_by_aosp_size() {
        let p = pop();
        for point in figure1(&p) {
            assert!(point.aosp_certs <= point.version.aosp_store_size());
        }
    }

    #[test]
    fn figure2_has_pinned_narrative_cells() {
        let p = pop();
        let cells = figure2(&p);
        assert!(!cells.is_empty());
        // Certisign appears on the Motorola 4.1 row.
        assert!(cells.iter().any(|c| {
            c.row == Figure2Row::Mfr(Manufacturer::Motorola, AndroidVersion::V4_1)
                && c.cert.contains("Certisign")
        }));
        // DoD appears on HTC rows with high frequency.
        let dod: Vec<_> = cells
            .iter()
            .filter(|c| {
                c.cert.contains("DoD CLASS 3")
                    && matches!(c.row, Figure2Row::Mfr(Manufacturer::Htc, _))
            })
            .collect();
        assert!(!dod.is_empty());
        for c in dod {
            assert!(c.frequency > 0.2, "DoD frequency {:.2}", c.frequency);
        }
        // Frequencies are valid ratios.
        for c in &cells {
            assert!((0.0..=1.0).contains(&c.frequency));
        }
    }

    #[test]
    fn figure2_class_distribution_shape() {
        let p = pop();
        let cells = figure2(&p);
        let dist = figure2_class_distribution(&cells);
        let total: f64 = dist.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // §5.1 ordering: NotRecorded ≥ OnlyAndroid > Ios7 > MozillaAndIos7.
        let get = |c: Figure2Class| dist.get(&c).copied().unwrap_or(0.0);
        assert!(get(Figure2Class::NotRecorded) > get(Figure2Class::Ios7));
        assert!(get(Figure2Class::OnlyAndroid) > get(Figure2Class::Ios7));
        assert!(get(Figure2Class::Ios7) > get(Figure2Class::MozillaAndIos7));
    }

    #[test]
    fn figure3_series_shapes() {
        let study = Study::quick();
        let series = figure3(&study.validation);
        assert_eq!(series.len(), 8);
        let by_label: HashMap<&str, &Fig3Series> =
            series.iter().map(|s| (s.label, s)).collect();
        // Dead fractions reproduce Table 4's ordering.
        let neither = by_label["Non AOSP and non Mozilla Android certs"].dead_fraction;
        let aosp44 = by_label["AOSP 4.4"].dead_fraction;
        let shared = by_label["AOSP 4.4 and Mozilla root certs"].dead_fraction;
        let ios7 = by_label["iOS7"].dead_fraction;
        assert!(neither > ios7, "neither {neither} > ios7 {ios7}");
        assert!(ios7 > aosp44);
        assert!(aosp44 > shared);
        // ECDFs are monotone and end at 1.
        for s in &series {
            for w in s.ecdf.windows(2) {
                assert!(w[0].0 < w[1].0);
                assert!(w[0].1 <= w[1].1);
            }
            assert!((s.ecdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn renders_do_not_panic() {
        let study = Study::quick();
        assert!(figure1_render(&study.population, 10).contains("Figure 1"));
        assert!(figure2_render(&study.population, 10).contains("Figure 2"));
        assert!(figure3_render(&study.validation).contains("Figure 3"));
    }
}
