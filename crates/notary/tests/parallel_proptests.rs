//! Property tests for the sharded validation build.
//!
//! The tentpole claim of the parallel execution layer is that sharding and
//! the lock-striped chain memo are *unobservable* in results: the memoised
//! parallel build must agree with the unmemoised sequential reference at
//! any pool width and on any ecosystem. Ecosystem generation is expensive,
//! so the case count is small; each case varies the RNG seed and the pool
//! width.

use proptest::prelude::*;
use tangled_exec::ExecPool;
use tangled_notary::ecosystem::{Ecosystem, EcosystemSpec};
use tangled_notary::validate::ValidationIndex;
use tangled_pki::stores::ReferenceStore;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_memoised_build_agrees_with_unmemoised(
        seed_offset in 0u64..4,
        width in 1usize..8,
    ) {
        let spec = EcosystemSpec {
            seed: 66_000_000 + seed_offset,
            scale: 0.01,
        };
        let eco = Ecosystem::generate(&spec);
        let fast = ValidationIndex::build_with_pool(&eco, &ExecPool::with_threads(width));
        let slow = ValidationIndex::build_unmemoised(&eco);
        prop_assert_eq!(fast.validated_total(), slow.validated_total());
        prop_assert_eq!(fast.total_non_expired(), slow.total_non_expired());
        prop_assert_eq!(fast.total_sessions(), slow.total_sessions());
        for rs in ReferenceStore::ALL {
            let store = rs.cached();
            prop_assert_eq!(fast.store_count(&store), slow.store_count(&store));
            prop_assert_eq!(fast.store_sessions(&store), slow.store_sessions(&store));
        }
    }
}
