//! `tangled-obs` — the deterministic observability layer.
//!
//! Every other crate on the study's hot path reports through here. The
//! layer has two halves with deliberately different determinism
//! contracts:
//!
//! * **The metrics [`registry`]** — process-wide counters, gauges and
//!   log₂ [`Log2Histogram`]s with cheap atomic recording. Metric *values*
//!   may be nondeterministic (wall-clock latencies, memo hit rates, pool
//!   widths); only the dump *format* is stable: [`Registry::dump_text`]
//!   and [`Registry::dump_json`] emit metrics in sorted name order.
//! * **The [`trace`] event log** — span-based structured tracing whose
//!   JSONL output is *byte-identical at any pool width*. Span IDs derive
//!   from `(seed, stage, unit index)` — never wall clock — and every
//!   event payload is a width-invariant value (unit counts, RNG-seed
//!   provenance, quarantine tallies in the `RunHealth` vocabulary).
//!   Pipeline stages emit trace events only from their sequential
//!   sections (phase boundaries and index-ordered merge loops), so the
//!   log is a pure function of the study inputs.
//!
//! The split is load-bearing: anything timed or scheduling-dependent
//! belongs in the registry, anything provenance-shaped belongs in the
//! trace. [`schema::validate_lines`] pins the event-log schema so CI can
//! check emitted logs without replaying the pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod registry;
pub mod schema;
pub mod trace;

pub use hist::Log2Histogram;
pub use registry::{registry, Registry};
pub use schema::{validate_lines, TraceSummary};
