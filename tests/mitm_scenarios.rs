//! Interception scenario engine, end to end: the offline report must be
//! byte-identical run-to-run and across pool widths, and a served replay
//! through a real trustd over `probe_session` must agree with the
//! offline compute verdict-for-verdict — same ledger, same fingerprint.
//!
//! The thread override is process-global, so this binary holds exactly
//! one test.

use std::sync::Arc;
use tangled_mass::exec::set_thread_override;
use tangled_mass::intercept::DefectClass;
use tangled_mass::scenario::{compute, replay_mitm, MintStrategy, ScenarioSpec};
use tangled_mass::trustd::{TrustServer, TrustService, DEFAULT_CACHE_CAPACITY};

#[test]
fn scenario_report_is_deterministic_and_served_replay_matches() {
    let spec = ScenarioSpec::for_scale(0.02, 2014);
    assert_eq!(spec.clients, 4);
    assert_eq!(spec.sessions(), 4 * 5 * 21);

    // Byte-identical at widths 1, 2 and 8: chain minting shards over the
    // pool and session verdicts merge in index order, so the rendered
    // ledger (fingerprint line included) must never depend on the width.
    let mut renders = Vec::new();
    for threads in [1usize, 2, 8] {
        set_thread_override(Some(threads));
        let report = compute(&spec).expect("compute");
        assert!(report.conserved(), "width {threads} conserves");
        renders.push(report.render());
    }
    set_thread_override(None);
    assert_eq!(renders[0], renders[1], "widths 1 and 2 agree");
    assert_eq!(renders[0], renders[2], "widths 1 and 8 agree");

    // The offline report again at the ambient width — the reference the
    // served replay must reproduce.
    let offline = compute(&spec).expect("compute");
    assert_eq!(offline.render(), renders[0], "ambient width agrees");

    // Attribution totality: every intercepted session is attributed to a
    // known defect class or to the locally-installed root.
    assert!(!offline.attribution.is_empty());
    for label in offline.attribution.keys() {
        assert!(
            label == "installed-root" || DefectClass::parse(label).is_some(),
            "unknown attribution label {label}"
        );
    }
    // The pin-whitelisted pass-throughs are exactly the 9 whitelisted
    // endpoints per client per strategy.
    let (sessions, _, _, whitelisted) = offline.totals();
    assert_eq!(sessions, spec.sessions());
    assert_eq!(whitelisted, spec.clients * spec.strategies.len() * 9);
    // Every strategy's row conserves on its own.
    for row in &offline.ledger {
        assert_eq!(row.sessions, row.blocked + row.intercepted + row.whitelisted);
        if row.strategy == MintStrategy::InstalledRoot {
            assert!(row.intercepted > 0, "installed root always intercepts");
        }
    }

    // Served mode: the same plan through a real server over the
    // idempotent probe_session op, pipelined. Fingerprint and ledger
    // must match the offline report exactly.
    let service = Arc::new(TrustService::new(DEFAULT_CACHE_CAPACITY));
    let server = TrustServer::bind("127.0.0.1:0", Arc::clone(&service), 4).expect("bind");
    let outcome = replay_mitm(server.local_addr(), &spec, 8).expect("served replay");
    server.shutdown();

    assert_eq!(outcome.wire_errors, 0, "no protocol errors");
    assert_eq!(outcome.requests, spec.sessions());
    assert!(outcome.report.conserved(), "served ledger conserves");
    assert_eq!(
        outcome.report.fingerprint, offline.fingerprint,
        "served fingerprint must equal the offline fingerprint"
    );
    assert_eq!(
        outcome.report.render(),
        offline.render(),
        "served report must be byte-identical to the offline report"
    );
}
