//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this from-scratch implementation of exactly the surface it uses:
//! [`rngs::StdRng`] (ChaCha12, as in rand 0.8), [`SeedableRng`] with the
//! PCG32-based `seed_from_u64` expansion, and the [`Rng`] methods
//! `gen`, `gen_bool` and `gen_range` with rand 0.8's sampling algorithms
//! (widening-multiply rejection for integers, 53-bit mantissa floats).
//! Streams are deterministic and, by construction, match the upstream
//! crate's output for the same seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word (two 32-bit words, low half first).
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// Construction from seeds (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with PCG32 (the rand 0.8 scheme).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for u32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        // rand 0.8: top bit of a u32.
        (rng.next_u32() >> 31) == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        // 53 uniform mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty => $wide:ty, $uns:ty);+ $(;)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample(self, rng: &mut impl RngCore) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = (self.end as $uns).wrapping_sub(self.start as $uns) as $wide;
                // rand 0.8 sample_single: widening multiply with a
                // bitmask-derived rejection zone.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $wide = draw_wide::<$wide>(rng);
                    let m = (v as u128).wrapping_mul(range as u128);
                    let hi = (m >> (<$wide>::BITS)) as $wide;
                    let lo = m as $wide;
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $ty);
                    }
                }
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample(self, rng: &mut impl RngCore) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let range =
                    ((end as $uns).wrapping_sub(start as $uns) as $wide).wrapping_add(1);
                if range == 0 {
                    // Full-width range.
                    return draw_wide::<$wide>(rng) as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $wide = draw_wide::<$wide>(rng);
                    let m = (v as u128).wrapping_mul(range as u128);
                    let hi = (m >> (<$wide>::BITS)) as $wide;
                    let lo = m as $wide;
                    if lo <= zone {
                        return start.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    )+};
}

/// Draw a uniform word of the sampler's working width.
fn draw_wide<W: WideWord>(rng: &mut impl RngCore) -> W {
    W::draw(rng)
}

/// Working widths for integer sampling (u32 for narrow types, u64 wide).
trait WideWord: Copy {
    /// Draw a uniform word of this width.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl WideWord for u32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl WideWord for u64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl_int_range!(
    u8 => u32, u8;
    u16 => u32, u16;
    u32 => u32, u32;
    u64 => u64, u64;
    usize => u64, usize;
    i32 => u32, u32;
    i64 => u64, u64;
);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // rand 0.8 UniformFloat::sample_single: uniform in [1, 2) minus 1.
        let mantissa = rng.next_u64() >> 11;
        let value1_2 = f64::from_bits((1023u64 << 52) | mantissa);
        let value0_1 = value1_2 - 1.0;
        value0_1 * (self.end - self.start) + self.start
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        (*self.start()..*self.end()).sample(rng)
    }
}

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of any [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        // rand 0.8 Bernoulli: 64-bit fixed-point threshold comparison.
        if p == 1.0 {
            self.next_u64();
            return true;
        }
        let p_int = (p * (2.0f64).powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let neg = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b} outside tolerance");
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.24)).count();
        assert!((2_100..2_700).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
