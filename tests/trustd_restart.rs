//! Crash-recovery regression: a trustd restarted from snapshot + journal
//! must be indistinguishable from the server that never went down —
//! same profile epochs, byte-identical verdicts — including after a torn
//! final journal record.

use tangled_mass::analysis::Study;
use tangled_mass::intercept::origin::OriginServers;
use tangled_mass::intercept::policy::Target;
use tangled_mass::pki::stores::ReferenceStore;
use tangled_mass::snap::{write_study, Journal, SectionId, Snapshot, TrustState};
use tangled_mass::trustd::replay::canonical;
use tangled_mass::trustd::wire::{Request, Response};
use tangled_mass::trustd::{
    degraded_index_from_snapshot, index_from_chain, index_from_snapshot, offline_verdicts,
    queries_for, replay, replay_journal, verdict_fingerprint, ReplayOp, ReplaySpec, TrustServer,
    TrustService, DEFAULT_CACHE_CAPACITY,
};

/// A per-run unique scratch directory, removed on drop (even when the
/// test body panics). Uniqueness comes from pid *and* a wall-clock
/// nanosecond stamp: a bare `{tag}-{pid}` name under a shared dir
/// survives the run and is replayed as stale state when the OS reuses
/// the pid.
struct TestDir(std::path::PathBuf);

impl TestDir {
    fn new(tag: &str) -> TestDir {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos();
        let dir = std::env::temp_dir().join(format!(
            "tangled-restart-{tag}-{}-{nanos}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TestDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn origin_chain(host: &str) -> Vec<Vec<u8>> {
    let origin = OriginServers::for_table6();
    let t = Target::parse(host).expect("valid target");
    origin
        .chain(&t)
        .expect("table 6 target")
        .iter()
        .map(|c| c.to_der().to_vec())
        .collect()
}

/// The probe requests both servers answer; chains repeat so the memo
/// cache participates on both sides.
fn probe_requests() -> Vec<Request> {
    let mut reqs = Vec::new();
    for profile in ["AOSP 4.4", "AOSP 4.1", "Mozilla", "device"] {
        for host in ["gmail.com:443", "www.chase.com:443", "gmail.com:443"] {
            reqs.push(Request::Validate {
                profile: profile.into(),
                chain: origin_chain(host),
            });
        }
    }
    reqs
}

fn verdicts(svc: &TrustService) -> Vec<String> {
    probe_requests()
        .iter()
        .map(|r| canonical(&svc.handle(r)))
        .collect()
}

fn swap_epoch(resp: &Response) -> u64 {
    match resp {
        Response::Swap { epoch, .. } => *epoch,
        other => panic!("expected a swap response, got {other:?}"),
    }
}

#[test]
fn restart_from_snapshot_and_journal_is_indistinguishable() {
    let dir = TestDir::new("indistinguishable");
    let snap_path = dir.path("study.snap");
    let journal_path = dir.path("swaps.jrn");

    // A study snapshot carries the reference profiles trustd warms from.
    let study = Study::new(0.05, 0.02);
    write_study(&study, &snap_path).expect("snapshot writes");

    // Server A: warm start, journal attached, then two swaps.
    let index = index_from_snapshot(&snap_path).expect("warm start");
    assert_eq!(index.current_epoch(), 10, "ten standard preloads");
    let a = TrustService::with_index(index, 256);
    let (journal, records, recovery) = Journal::open(&journal_path).expect("fresh journal");
    assert!(records.is_empty() && !recovery.truncated);
    a.attach_journal(journal);

    // Swap 1: overlay AOSP 4.4 with the Mozilla store. Swap 2: install a
    // trimmed store under a brand-new profile name.
    let mozilla = ReferenceStore::Mozilla.cached();
    let e1 = swap_epoch(&a.handle(&Request::Swap {
        profile: "AOSP 4.4".into(),
        snapshot: mozilla.snapshot(),
    }));
    let mut trimmed = ReferenceStore::Aosp44.cached().cloned_as("trimmed");
    let drop_id = trimmed.identities()[0].clone();
    trimmed.remove(&drop_id);
    let e2 = swap_epoch(&a.handle(&Request::Swap {
        profile: "device".into(),
        snapshot: trimmed.snapshot(),
    }));
    assert_eq!((e1, e2), (11, 12), "swap responses report the post-bump epoch");
    let live = verdicts(&a);

    // Server B: fresh process — same snapshot, journal replayed.
    let index = index_from_snapshot(&snap_path).expect("warm start");
    let (journal, records, recovery) = Journal::open(&journal_path).expect("journal reopens");
    assert!(!recovery.truncated);
    assert_eq!(
        records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
        vec![11, 12],
        "journal frames carry the epochs the swaps reported"
    );
    replay_journal(&index, &records).expect("replay");
    let b = TrustService::with_index(index, 256);
    b.attach_journal(journal);

    assert_eq!(b.index().current_epoch(), a.index().current_epoch());
    for profile in ["AOSP 4.4", "device", "Mozilla"] {
        assert_eq!(
            b.index().profile(profile).map(|p| p.epoch),
            a.index().profile(profile).map(|p| p.epoch),
            "epoch of '{profile}' diverged across restart"
        );
    }
    assert_eq!(verdicts(&b), live, "restarted server serves different verdicts");

    // The restarted server keeps journalling: one more swap lands on the
    // next epoch in both the response and the log.
    let e3 = swap_epoch(&b.handle(&Request::Swap {
        profile: "device".into(),
        snapshot: mozilla.snapshot(),
    }));
    assert_eq!(e3, 13);
    let (_, records, _) = Journal::open(&journal_path).expect("journal reopens");
    assert_eq!(records.last().map(|r| r.epoch), Some(13));
}

#[test]
fn torn_final_record_recovers_to_the_previous_swap() {
    let dir = TestDir::new("torn");
    let snap_path = dir.path("study.snap");
    let journal_path = dir.path("swaps.jrn");

    let study = Study::new(0.05, 0.02);
    write_study(&study, &snap_path).expect("snapshot writes");

    // Server A performs two swaps, then "crashes" mid-append: we simulate
    // the torn write by chopping bytes off the second frame.
    let a = TrustService::with_index(index_from_snapshot(&snap_path).expect("warm"), 256);
    let (journal, _, _) = Journal::open(&journal_path).expect("fresh journal");
    a.attach_journal(journal);
    let mozilla = ReferenceStore::Mozilla.cached();
    a.handle(&Request::Swap {
        profile: "AOSP 4.4".into(),
        snapshot: mozilla.snapshot(),
    });
    // Verdicts as of epoch 11 — what a restart must reproduce.
    let after_first = verdicts(&a);
    a.handle(&Request::Swap {
        profile: "device".into(),
        snapshot: ReferenceStore::Ios7.cached().snapshot(),
    });
    drop(a);
    let data = std::fs::read(&journal_path).unwrap();
    std::fs::write(&journal_path, &data[..data.len() - 33]).unwrap();

    // Restart: the torn frame is truncated, the first swap survives.
    let index = index_from_snapshot(&snap_path).expect("warm start");
    let (journal, records, recovery) = Journal::open(&journal_path).expect("recovery");
    assert!(recovery.truncated, "the torn tail must be detected");
    assert_eq!(records.len(), 1, "only the fsync'd swap survives");
    replay_journal(&index, &records).expect("replay");
    let b = TrustService::with_index(index, 256);
    b.attach_journal(journal);

    assert_eq!(b.index().current_epoch(), 11);
    assert!(
        b.index().profile("device").is_none(),
        "the torn swap never happened"
    );
    assert_eq!(
        verdicts(&b),
        after_first,
        "recovered server must match the epoch-11 state"
    );
}

/// Acceptance for the disparity serving path: `compare` replies match
/// the offline per-chain verdict vectors exactly — over a live TCP
/// replay, after a warm start from a snapshot carrying the
/// ecosystem-stores section, and after a *degraded* start whose
/// eco-stores section is corrupted (emulating a pre-disparity
/// snapshot), which regenerates the ecosystem profiles cold.
#[test]
fn compare_replies_match_offline_vectors_across_warm_and_degraded_starts() {
    let dir = TestDir::new("compare");
    let snap_path = dir.path("study.snap");
    let study = Study::new(0.05, 0.02);
    write_study(&study, &snap_path).expect("snapshot writes");

    let spec = ReplaySpec::new(2014, 60).with_op(ReplayOp::Compare);
    let offline = offline_verdicts(&spec);
    let requests = queries_for(&spec);

    // Live TCP replay against a cold server.
    let service = std::sync::Arc::new(TrustService::new(DEFAULT_CACHE_CAPACITY));
    let server =
        TrustServer::bind("127.0.0.1:0", std::sync::Arc::clone(&service), 2).expect("bind");
    let outcome = replay(server.local_addr(), &spec).expect("replay");
    server.shutdown();
    assert_eq!(
        outcome.verdicts, offline,
        "served compare vectors diverge from the offline study"
    );
    assert_eq!(
        verdict_fingerprint(&outcome.verdicts),
        verdict_fingerprint(&offline)
    );

    // Warm start from the eco-carrying snapshot: byte-identical replies.
    let warm = TrustService::with_index(index_from_snapshot(&snap_path).expect("warm"), 256);
    let warm_verdicts: Vec<String> = requests
        .iter()
        .map(|r| canonical(&warm.handle(r)))
        .collect();
    assert_eq!(warm_verdicts, offline, "warm-started compare vectors diverge");

    // Corrupt the eco-stores section: the strict warm start refuses, the
    // degraded start quarantines it and regenerates the four ecosystem
    // profiles cold — with identical verdict vectors either way.
    let snap = Snapshot::open(&snap_path).expect("open");
    let pos = SectionId::ALL
        .iter()
        .position(|id| id.name() == "eco-stores")
        .expect("eco-stores section");
    let entry = &snap.entries()[pos];
    let offset = entry.offset as usize + (entry.len as usize) / 2;
    drop(snap);
    let mut bytes = std::fs::read(&snap_path).expect("read");
    bytes[offset] ^= 0x20;
    std::fs::write(&snap_path, &bytes).expect("corrupt");

    assert!(
        index_from_snapshot(&snap_path).is_err(),
        "strict warm start must refuse a damaged eco-stores section"
    );
    let start = degraded_index_from_snapshot(&snap_path).expect("degraded start");
    assert!(start.fallback, "eco damage forces the cold fallback");
    assert!(
        start
            .quarantined
            .iter()
            .any(|(unit, _)| unit == "eco-stores"),
        "quarantine must name the eco-stores section: {:?}",
        start.quarantined
    );
    let deg = TrustService::with_index(start.index, 256);
    let deg_verdicts: Vec<String> = requests
        .iter()
        .map(|r| canonical(&deg.handle(r)))
        .collect();
    assert_eq!(deg_verdicts, offline, "degraded-start compare vectors diverge");
}

/// Acceptance for journal compaction: a server restarted from the
/// compacted checkpoint + truncated journal serves verdict-for-verdict
/// identical replies to one restarted from the full uncompacted journal
/// — and both match the server that never went down.
#[test]
fn restart_from_compacted_checkpoint_matches_uncompacted_restart() {
    let dir = TestDir::new("compacted");
    let snap_path = dir.path("study.snap");
    let compacted_journal = dir.path("compacted.jrn");
    let plain_journal = dir.path("plain.jrn");

    let study = Study::new(0.05, 0.02);
    write_study(&study, &snap_path).expect("snapshot writes");
    let base = std::fs::read(&snap_path).expect("snapshot bytes");

    // Two live servers take the same three swaps; one compacts after
    // every append (threshold 1 byte), the other journals unboundedly.
    let compacting = TrustService::with_index(index_from_snapshot(&snap_path).expect("warm"), 256);
    let (journal, _, _) = Journal::open(&compacted_journal).expect("fresh journal");
    compacting.attach_journal(journal);
    compacting.configure_compaction(
        format!("{compacted_journal}.ckpt"),
        1,
        Some(base),
        TrustState::default(),
    );
    let plain = TrustService::with_index(index_from_snapshot(&snap_path).expect("warm"), 256);
    let (journal, _, _) = Journal::open(&plain_journal).expect("fresh journal");
    plain.attach_journal(journal);

    let mozilla = ReferenceStore::Mozilla.cached();
    let mut trimmed = ReferenceStore::Aosp44.cached().cloned_as("trimmed");
    let drop_id = trimmed.identities()[0].clone();
    trimmed.remove(&drop_id);
    let swaps = [
        ("AOSP 4.4", mozilla.snapshot()),
        ("device", trimmed.snapshot()),
        ("AOSP 4.4", ReferenceStore::Ios7.cached().snapshot()),
    ];
    for (profile, snapshot) in &swaps {
        let req = Request::Swap {
            profile: (*profile).into(),
            snapshot: snapshot.clone(),
        };
        assert_eq!(
            swap_epoch(&compacting.handle(&req)),
            swap_epoch(&plain.handle(&req)),
            "live epochs diverge before any restart"
        );
    }
    let live = verdicts(&compacting);
    assert_eq!(verdicts(&plain), live, "the two live servers disagree");
    assert_eq!(compacting.compactions(), 3, "threshold 1 compacts every swap");
    drop(compacting);
    drop(plain);

    // The compacted journal is back to its bare magic: recovery no
    // longer pays for the full history.
    let (journal, tail, _) = Journal::open(&compacted_journal).expect("reopen");
    assert!(tail.is_empty(), "compaction must truncate the journal");
    assert_eq!(journal.size(), 8, "bare magic only");
    drop(journal);

    // Restart 1: snapshot + checkpoint chain, then the (empty) tail.
    let chain = vec![snap_path.clone(), format!("{compacted_journal}.ckpt")];
    let start = index_from_chain(&chain).expect("chain warm start");
    let state = start.state.expect("checkpoint carries a trust-state");
    assert_eq!(state.epoch, 13);
    assert_eq!(
        state.records.iter().map(|r| r.profile.as_str()).collect::<Vec<_>>(),
        vec!["device", "AOSP 4.4"],
        "fold keeps the last swap per profile in epoch order"
    );
    let (_, tail, _) = Journal::open(&compacted_journal).expect("reopen");
    replay_journal(&start.index, &tail).expect("tail replay");
    let from_ckpt = TrustService::with_index(start.index, 256);

    // Restart 2: the same snapshot with the full journal replayed.
    let index = index_from_snapshot(&snap_path).expect("warm");
    let (_, records, _) = Journal::open(&plain_journal).expect("reopen");
    assert_eq!(records.len(), 3, "uncompacted journal holds the history");
    replay_journal(&index, &records).expect("replay");
    let from_journal = TrustService::with_index(index, 256);

    assert_eq!(from_ckpt.index().current_epoch(), 13);
    assert_eq!(from_journal.index().current_epoch(), 13);
    for profile in ["AOSP 4.4", "device", "Mozilla"] {
        assert_eq!(
            from_ckpt.index().profile(profile).map(|p| p.epoch),
            from_journal.index().profile(profile).map(|p| p.epoch),
            "epoch of '{profile}' diverged between recovery paths"
        );
    }
    let ckpt_verdicts = verdicts(&from_ckpt);
    assert_eq!(
        ckpt_verdicts,
        verdicts(&from_journal),
        "compacted and uncompacted recovery serve different verdicts"
    );
    assert_eq!(ckpt_verdicts, live, "recovered servers diverge from the live one");
}
