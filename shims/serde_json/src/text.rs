//! JSON text codec: a round-tripping writer and a recursive-descent parser.

use crate::value::{Number, Value};
use crate::Error;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serialize compactly (no whitespace).
pub fn write_compact(value: &Value, out: &mut String) {
    write_value(value, out, None, 0);
}

/// Serialize with two-space indentation.
pub fn write_pretty(value: &Value, out: &mut String) {
    write_value(value, out, Some(2), 0);
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(f) => {
            if !f.is_finite() {
                // JSON has no NaN/Infinity; serde_json writes null.
                out.push_str("null");
            } else if f == f.trunc() && f.abs() < 1e16 {
                // Keep a decimal point so the float re-parses as a float.
                let _ = write!(out, "{f:.1}");
            } else {
                // Rust's shortest round-trip representation.
                let _ = write!(out, "{f}");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::msg("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::msg(format!(
                "unexpected byte 0x{other:02x} at offset {}",
                self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the unescaped run in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let esc = self
            .peek()
            .ok_or_else(|| Error::msg("unterminated escape"))?;
        self.pos += 1;
        match esc {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let unit = self.hex4()?;
                let c = if (0xd800..0xdc00).contains(&unit) {
                    // High surrogate: require a following \uXXXX low half.
                    if self.peek() != Some(b'\\') {
                        return Err(Error::msg("unpaired surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(Error::msg("unpaired surrogate"));
                    }
                    self.pos += 1;
                    let low = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&low) {
                        return Err(Error::msg("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                    char::from_u32(code).ok_or_else(|| Error::msg("invalid code point"))?
                } else {
                    char::from_u32(unit).ok_or_else(|| Error::msg("invalid code point"))?
                };
                out.push(c);
            }
            other => {
                return Err(Error::msg(format!("invalid escape '\\{}'", other as char)));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::msg("invalid \\u escape"))?;
        let unit =
            u32::from_str_radix(text, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.pos += 1;
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if !saw_digit {
            return Err(Error::msg(format!("invalid number at offset {start}")));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<i64>() {
                    return Ok(Value::Number(if n == 0 {
                        Number::PosInt(0)
                    } else {
                        Number::NegInt(-n)
                    }));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
        }
        // Floats, and integers too large for the integer reps.
        let f: f64 = text
            .parse()
            .map_err(|_| Error::msg(format!("invalid number '{text}'")))?;
        Ok(Value::Number(Number::Float(f)))
    }
}
