//! `tangled-core` — the paper's analysis pipeline.
//!
//! Takes the measurement substrates (the [`tangled_netalyzr`] device
//! population, the [`tangled_notary`] certificate ecosystem, the
//! [`tangled_intercept`] proxy model) and reproduces every table and
//! figure of *“A Tangled Mass: The Android Root Certificate Stores”*:
//!
//! | artifact | module |
//! |----------|--------|
//! | Table 1 — root store sizes | [`tables::table1`] |
//! | Table 2 — top devices/manufacturers | [`tables::table2`] |
//! | Table 3 — Notary certs validated per store | [`tables::table3`] |
//! | Table 4 — per-category dead-root fractions | [`tables::table4`] |
//! | Table 5 — rooted-device CAs | [`tables::table5`] |
//! | Table 6 — intercepted/whitelisted domains | [`tables::table6`] |
//! | Figure 1 — AOSP vs additional certs scatter | [`figures::figure1`] |
//! | Figure 2 — per-row certificate presence matrix | [`figures::figure2`] |
//! | Figure 3 — per-root validation ECDFs | [`figures::figure3`] |
//! | §5/§6 headline statistics | [`classify`] |
//!
//! [`study::Study`] bundles the generated inputs so the artifacts share
//! one dataset; [`report::TextTable`] renders them in the paper's layout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod export;
pub mod figures;
pub mod health;
pub mod report;
pub mod study;
pub mod survey;
pub mod tables;
pub mod trimming;

pub use report::TextTable;
pub use study::Study;
