//! The sharded in-memory store index behind the service.
//!
//! Two structures share one epoch counter:
//!
//! * **Profiles** — named, immutable [`RootStore`] snapshots, each paired
//!   with a preloaded [`ChainVerifier`] so validation never rebuilds the
//!   anchor index per request. A profile swap replaces the whole
//!   [`StoreProfile`] atomically and bumps the global epoch; in-flight
//!   requests keep their `Arc` to the old profile.
//! * **Membership shards** — `CertIdentity → profile names`, spread over
//!   N shards by identity hash so concurrent `classify` lookups touch
//!   independent locks.
//!
//! Cache entries are keyed by `(profile, epoch, chain)`; since a swap
//! changes the epoch, stale verdicts die by *key mismatch* — no scan, no
//! invalidation pass.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use tangled_pki::store::RootStore;
use tangled_pki::stores::{EcosystemStore, ReferenceStore};
use tangled_x509::{CertIdentity, ChainVerifier};

/// Default shard count: enough to spread a handful of worker threads,
/// cheap enough to scan for membership teardown on swap.
pub const DEFAULT_SHARDS: usize = 16;

/// One installed store profile. Immutable once published.
#[derive(Clone)]
pub struct StoreProfile {
    /// The profile's name (index key).
    pub name: String,
    /// The underlying store.
    pub store: Arc<RootStore>,
    /// A verifier preloaded with the store's enabled anchors.
    pub anchors: Arc<ChainVerifier>,
    /// The epoch at which this profile was installed.
    pub epoch: u64,
}

/// The sharded profile/membership index.
pub struct StoreIndex {
    shards: Vec<RwLock<HashMap<CertIdentity, Vec<String>>>>,
    profiles: RwLock<HashMap<String, StoreProfile>>,
    epoch: AtomicU64,
}

impl StoreIndex {
    /// An empty index with `shards` membership shards (minimum 1).
    pub fn new(shards: usize) -> StoreIndex {
        let shards = shards.max(1);
        StoreIndex {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            profiles: RwLock::new(HashMap::new()),
            epoch: AtomicU64::new(0),
        }
    }

    /// An index preloaded with all six reference stores (the four AOSP
    /// releases, Mozilla, iOS 7), each under its canonical name.
    ///
    /// The per-store anchor verifiers (the expensive part of a profile
    /// install) are built in parallel on the ambient
    /// [`tangled_exec::ExecPool`]; installs then publish sequentially in
    /// [`ReferenceStore::ALL`] order, so profile epochs are identical at
    /// any thread count.
    pub fn with_reference_profiles() -> StoreIndex {
        Self::preloaded(
            ReferenceStore::ALL
                .into_iter()
                .map(|rs| (rs.name(), rs.cached()))
                .collect(),
        )
    }

    /// An index preloaded with all ten standard profiles: the six
    /// reference stores (epochs 1–6, [`ReferenceStore::ALL`] order)
    /// followed by the four ecosystem families (epochs 7–10,
    /// [`EcosystemStore::ALL`] order) — the store set the disparity
    /// engine compares and the `compare` wire op answers for.
    pub fn with_standard_profiles() -> StoreIndex {
        Self::preloaded(
            ReferenceStore::ALL
                .into_iter()
                .map(|rs| (rs.name(), rs.cached()))
                .chain(
                    EcosystemStore::ALL
                        .into_iter()
                        .map(|es| (es.name(), es.cached())),
                )
                .collect(),
        )
    }

    /// Shared preload path: anchor verifiers (the expensive part of a
    /// profile install) are built in parallel on the ambient
    /// [`tangled_exec::ExecPool`]; installs then publish sequentially in
    /// list order, so profile epochs are identical at any thread count.
    fn preloaded(stores: Vec<(&'static str, Arc<RootStore>)>) -> StoreIndex {
        let index = StoreIndex::new(DEFAULT_SHARDS);
        let verifiers = tangled_exec::ExecPool::current()
            .par_map_indexed(&stores, |_, (_, store)| build_anchor_verifier(store));
        for ((name, store), verifier) in stores.into_iter().zip(verifiers) {
            index.install_with_verifier(name, store, Arc::new(verifier));
        }
        index
    }

    /// Install (or replace) a profile, bumping the global epoch. Returns
    /// the installed profile.
    pub fn install(&self, name: &str, store: Arc<RootStore>) -> StoreProfile {
        let verifier = build_anchor_verifier(&store);
        self.install_with_verifier(name, store, Arc::new(verifier))
    }

    /// As [`StoreIndex::install`] with a pre-built verifier — callers that
    /// construct verifiers in parallel publish them through here, keeping
    /// the epoch sequence a property of publish order alone.
    pub fn install_with_verifier(
        &self,
        name: &str,
        store: Arc<RootStore>,
        anchors: Arc<ChainVerifier>,
    ) -> StoreProfile {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let profile = StoreProfile {
            name: name.to_owned(),
            store: Arc::clone(&store),
            anchors,
            epoch,
        };

        // Membership: drop the old profile's identities, add the new.
        for shard in &self.shards {
            let mut members = shard.write().expect("shard poisoned");
            members.retain(|_, names| {
                names.retain(|n| n != name);
                !names.is_empty()
            });
        }
        for id in store.identities() {
            let mut members = self.shard_for(id).write().expect("shard poisoned");
            let names = members.entry(id.clone()).or_default();
            if !names.iter().any(|n| n == name) {
                names.push(name.to_owned());
            }
        }

        self.profiles
            .write()
            .expect("profiles poisoned")
            .insert(name.to_owned(), profile.clone());
        profile
    }

    /// Install a profile *at* a recorded epoch, as checkpoint warm start
    /// requires: folded swap records must land at the epochs the journal
    /// originally produced so the post-restart epoch sequence is
    /// indistinguishable from a full replay. `epoch` must be ahead of
    /// the current counter (epochs only move forward); the counter is
    /// advanced to `epoch` by the install.
    pub fn install_at_epoch(
        &self,
        name: &str,
        store: Arc<RootStore>,
        epoch: u64,
    ) -> Result<StoreProfile, u64> {
        let current = self.epoch.load(Ordering::SeqCst);
        if epoch <= current {
            return Err(current);
        }
        self.epoch.store(epoch - 1, Ordering::SeqCst);
        Ok(self.install(name, store))
    }

    /// Look up a profile by name.
    pub fn profile(&self, name: &str) -> Option<StoreProfile> {
        self.profiles
            .read()
            .expect("profiles poisoned")
            .get(name)
            .cloned()
    }

    /// Installed profile names, sorted.
    pub fn profile_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .profiles
            .read()
            .expect("profiles poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Profiles whose store contains `id`, sorted.
    pub fn member_of(&self, id: &CertIdentity) -> Vec<String> {
        let members = self.shard_for(id).read().expect("shard poisoned");
        let mut names = members.get(id).cloned().unwrap_or_default();
        names.sort();
        names
    }

    /// The current global epoch (0 = nothing ever installed).
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Number of membership shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, id: &CertIdentity) -> &RwLock<HashMap<CertIdentity, Vec<String>>> {
        let mut hasher = DefaultHasher::new();
        id.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }
}

/// Build a verifier over a store's enabled anchors.
pub(crate) fn build_anchor_verifier(store: &RootStore) -> ChainVerifier {
    let mut verifier = ChainVerifier::new();
    for cert in store.enabled_certificates() {
        verifier.add_anchor(cert);
    }
    verifier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_profiles_resolve_by_canonical_name() {
        let index = StoreIndex::with_reference_profiles();
        assert_eq!(
            index.profile_names(),
            vec![
                "AOSP 4.1",
                "AOSP 4.2",
                "AOSP 4.3",
                "AOSP 4.4",
                "Mozilla",
                "iOS 7"
            ]
        );
        let p = index.profile("AOSP 4.4").expect("installed");
        assert_eq!(p.store.len(), 150);
        assert_eq!(p.anchors.anchor_count(), p.store.iter_enabled().count());
        assert!(index.profile("AOSP 9.0").is_none());
    }

    #[test]
    fn standard_profiles_cover_all_ten_stores_in_epoch_order() {
        let index = StoreIndex::with_standard_profiles();
        assert_eq!(index.current_epoch(), 10);
        // Epochs follow the canonical order: reference stores 1–6, then
        // the ecosystem families 7–10.
        for (i, name) in tangled_pki::stores::standard_store_names()
            .into_iter()
            .enumerate()
        {
            let p = index.profile(name).expect("installed");
            assert_eq!(p.epoch, i as u64 + 1, "{name}");
        }
        assert_eq!(index.profile("Microsoft").unwrap().store.len(), 261);
    }

    #[test]
    fn membership_spans_profiles() {
        let index = StoreIndex::with_reference_profiles();
        // Every 4.1 anchor also ships in 4.2 (the stores validate
        // identically per Table 3), so membership includes both.
        let store = ReferenceStore::Aosp41.cached();
        let id = &store.identities()[0];
        let members = index.member_of(id);
        assert!(members.contains(&"AOSP 4.1".to_owned()), "{members:?}");
        assert!(members.contains(&"AOSP 4.2".to_owned()), "{members:?}");
        // Sorted output.
        let mut sorted = members.clone();
        sorted.sort();
        assert_eq!(members, sorted);
    }

    #[test]
    fn install_bumps_epoch_and_replaces_membership() {
        let index = StoreIndex::new(4);
        assert_eq!(index.current_epoch(), 0);
        let full = ReferenceStore::Aosp44.cached();
        let p1 = index.install("device", Arc::clone(&full));
        assert_eq!(p1.epoch, 1);
        let id = full.identities()[0].clone();
        assert_eq!(index.member_of(&id), vec!["device".to_owned()]);

        // Swap in a store without that anchor: membership must follow.
        let mut trimmed = full.cloned_as("trimmed");
        trimmed.remove(&id);
        let p2 = index.install("device", Arc::new(trimmed));
        assert_eq!(p2.epoch, 2);
        assert_eq!(index.current_epoch(), 2);
        assert!(index.member_of(&id).is_empty());
        // Other anchors still resolve.
        let other = full.identities()[1].clone();
        assert_eq!(index.member_of(&other), vec!["device".to_owned()]);
    }

    #[test]
    fn shard_assignment_is_stable() {
        let index = StoreIndex::new(8);
        let store = ReferenceStore::Mozilla.cached();
        let id = &store.identities()[0];
        let a = index.shard_for(id) as *const _;
        let b = index.shard_for(id) as *const _;
        assert_eq!(a, b, "same identity always maps to the same shard");
        assert_eq!(index.shard_count(), 8);
    }
}
