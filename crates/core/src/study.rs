//! Study bundle: one dataset shared by every table and figure.

use crate::health::RunHealth;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tangled_exec::ExecPool;
use tangled_faults::{FaultPlan, InjectedFault};
use tangled_netalyzr::{Population, PopulationSpec};
use tangled_notary::degrade::RawEcosystem;
use tangled_notary::ecosystem::EcosystemSpec;
use tangled_notary::{Ecosystem, NotaryDb, ValidationIndex};
use tangled_pki::cacerts::{from_cacerts_lenient, to_cacerts_pem};
use tangled_pki::store::RootStore;
use tangled_pki::trust::AnchorSource;
use tangled_x509::CertIdentity;

/// Salt distinguishing the Notary ingest surface under one fault plan.
const NOTARY_SALT: u64 = 0x6e6f_7461_7279;
/// Base salt for the per-store cacerts surfaces (xor'd with the store
/// index so each distinct store degrades independently).
const CACERTS_SALT: u64 = 0x63_6163_6572_7473;

/// The generated inputs for one run of the paper's analysis.
pub struct Study {
    /// The Netalyzr device/session population.
    pub population: Population,
    /// The Notary certificate ecosystem.
    pub ecosystem: Ecosystem,
    /// Per-root validation tallies over the ecosystem.
    pub validation: ValidationIndex,
    /// The Notary record-keeping view.
    pub db: NotaryDb,
    /// Fault accounting (empty for clean runs).
    pub health: RunHealth,
    /// The raw injection ledger (empty for clean runs) — kept alongside
    /// [`Study::health`] so tests can reconcile the two independently.
    pub injected: Vec<InjectedFault>,
}

impl Study {
    /// Generate a study at the given scales (1.0 = the paper's dataset
    /// sizes for the population; the ecosystem plan at 1.0 is the scaled
    /// Notary of DESIGN.md).
    pub fn new(population_scale: f64, ecosystem_scale: f64) -> Study {
        let population = Population::generate(&PopulationSpec::scaled(population_scale));
        let ecosystem = Ecosystem::generate(&EcosystemSpec::scaled(ecosystem_scale));
        Study::assemble(population, ecosystem, RunHealth::new(), Vec::new())
    }

    /// Generate a study whose ingest surfaces are degraded by `plan`
    /// before analysis. Both the Notary collection (as raw wire bytes)
    /// and every distinct device root store (as a rendered cacerts
    /// directory) pass through the fault engine; damaged units are
    /// quarantined by the staged re-ingest and recorded in
    /// [`Study::health`] instead of aborting the run.
    pub fn with_faults(
        population_scale: f64,
        ecosystem_scale: f64,
        plan: &FaultPlan,
    ) -> Study {
        let span = tangled_obs::trace::span_start("study.with_faults", plan.seed, 0, &[]);
        let started = std::time::Instant::now();
        let mut health = RunHealth::new();
        let mut injected = Vec::new();

        // Notary: demote to wire form, damage, re-ingest with quarantine.
        let mut raw = RawEcosystem::from_ecosystem(Ecosystem::generate(&EcosystemSpec::scaled(
            ecosystem_scale,
        )));
        let ledger = plan.degrade(&mut raw, NOTARY_SALT);
        let (ecosystem, ingest_faults) = raw.into_ecosystem();
        for fault in &ledger {
            health.record_injected(fault.kind.label());
        }
        for q in &ingest_faults {
            health.record_quarantined(q.stage.label(), q.error.label());
        }
        injected.extend(ledger);

        // Netalyzr: render each distinct store as a cacerts directory,
        // damage the files, reload leniently, and swap the degraded store
        // back in. Surviving anchors keep their original provenance and
        // enablement (the directory format does not carry them). Each
        // store's degradation is salted by its *index* in the distinct-
        // store list (stable across runs and pool widths), so the units
        // parallelise freely; ledgers merge back in index order, keeping
        // the health tallies and the injection ledger deterministic.
        let mut population = Population::generate(&PopulationSpec::scaled(population_scale));
        let stores = population.distinct_stores();
        let outcomes = ExecPool::current().par_map_indexed(&stores, |i, store| {
            let mut files = to_cacerts_pem(store);
            let ledger = plan.degrade(&mut files, CACERTS_SALT ^ (i as u64));
            if ledger.is_empty() {
                return None;
            }
            let (loaded, quarantined) =
                from_cacerts_lenient(store.name(), &files, AnchorSource::Unknown);
            let survivors: HashSet<CertIdentity> =
                loaded.identities().iter().cloned().collect();
            let mut rebuilt = RootStore::new(store.name());
            for anchor in store.iter() {
                if survivors.contains(&anchor.identity()) {
                    rebuilt.add(anchor.clone());
                }
            }
            Some((store.name().to_owned(), rebuilt, ledger, quarantined))
        });
        let mut replacements = HashMap::new();
        for outcome in outcomes {
            let Some((name, rebuilt, ledger, quarantined)) = outcome else {
                continue;
            };
            for fault in &ledger {
                health.record_injected(fault.kind.label());
            }
            for q in &quarantined {
                health.record_quarantined("cacerts", q.error.label());
            }
            injected.extend(ledger);
            // Keyed by store name — stable run-to-run, unlike the Arc
            // allocation address this map used to key on.
            replacements.insert(name, Arc::new(rebuilt));
        }
        population.replace_stores(&replacements);

        // The health ledger is deterministic (index-ordered merges over
        // salted, width-independent degradation), so replaying it into the
        // trace — sorted maps, sequential code — keeps the log
        // byte-identical at any pool width.
        for (kind, n) in &health.injected {
            tangled_obs::trace::point(
                "study.with_faults",
                span,
                &[
                    ("injected_kind", serde_json::Value::from(kind.as_str())),
                    ("count", serde_json::Value::from(*n)),
                ],
            );
        }
        for (stage, errors) in &health.quarantined {
            for (label, n) in errors {
                tangled_obs::trace::quarantine(
                    "study.with_faults",
                    span,
                    stage,
                    label,
                    u64::from(*n),
                );
            }
        }
        tangled_obs::registry::add("study.injected", u64::from(health.injected_total()));
        tangled_obs::registry::add(
            "study.quarantined",
            u64::from(health.quarantined_total()),
        );
        tangled_obs::registry::observe(
            "study.with_faults.us",
            started.elapsed().as_micros() as u64,
        );
        let study = Study::assemble(population, ecosystem, health, injected);
        tangled_obs::trace::span_end(
            "study.with_faults",
            span,
            &[
                (
                    "injected",
                    serde_json::Value::from(u64::from(study.health.injected_total())),
                ),
                (
                    "quarantined",
                    serde_json::Value::from(u64::from(study.health.quarantined_total())),
                ),
            ],
        );
        study
    }

    fn assemble(
        population: Population,
        ecosystem: Ecosystem,
        health: RunHealth,
        injected: Vec<InjectedFault>,
    ) -> Study {
        let validation = ValidationIndex::build(&ecosystem);
        let db = NotaryDb::build(&ecosystem);
        Study {
            population,
            ecosystem,
            validation,
            db,
            health,
            injected,
        }
    }

    /// The full-scale study (15,970 sessions; full issuance plan).
    pub fn full() -> Study {
        Study::new(1.0, 1.0)
    }

    /// A reduced study for tests: sessions at 25 %, ecosystem at the
    /// smallest scale that preserves the Table 3 ordering.
    pub fn quick() -> Study {
        Study::new(0.25, 0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_builds_consistently() {
        let s = Study::quick();
        assert!(!s.population.sessions.is_empty());
        assert!(!s.ecosystem.is_empty());
        assert!(s.validation.validated_total() > 0);
        assert!(s.db.unique_certs() == s.ecosystem.len());
        assert!(s.health.is_balanced());
        assert!(s.injected.is_empty());
    }

    #[test]
    fn zero_rate_fault_study_matches_clean() {
        let clean = Study::new(0.05, 0.02);
        let plan = FaultPlan::new(1);
        let faulted = Study::with_faults(0.05, 0.02, &plan);
        assert_eq!(faulted.ecosystem.len(), clean.ecosystem.len());
        assert_eq!(
            faulted.population.devices.len(),
            clean.population.devices.len()
        );
        assert!(faulted.injected.is_empty());
        assert_eq!(faulted.health, RunHealth::new());
    }

    #[test]
    fn faulted_study_reconciles_and_keeps_metadata() {
        let plan = FaultPlan::new(404).with_rate(0.05);
        let s = Study::with_faults(0.05, 0.02, &plan);
        assert!(!s.injected.is_empty(), "5% over both surfaces should hit");
        assert!(s.health.is_balanced(), "{}", s.health);
        assert_eq!(s.health.injected_total() as usize, s.injected.len());
        // Survivor anchors keep their provenance: sources beyond Unknown
        // still appear across the degraded population.
        let mut sources = std::collections::HashSet::new();
        for d in &s.population.devices {
            for a in d.store.iter() {
                sources.insert(a.source);
            }
        }
        assert!(sources.contains(&AnchorSource::Aosp));
    }
}
