//! Root-store trimming — the Perl et al. direction the paper confirms
//! (§5.3: "one could seemingly disable these certificates with little
//! negative effect on the user experience or TLS functionality").
//!
//! [`plan`] computes, for a store and a validation index, which anchors to
//! disable under a coverage target: keep the smallest set of anchors (by
//! greedy marginal coverage) that retains the requested fraction of
//! validated traffic, disable the rest. Both certificate-weighted and
//! session-weighted objectives are supported — a root validating three
//! certificates that carry half the sessions is *not* dead weight.

use std::collections::HashMap;
use tangled_notary::ValidationIndex;
use tangled_pki::store::RootStore;
use tangled_pki::trust::TrustBits;
use tangled_x509::CertIdentity;

/// What the planner optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weighting {
    /// Count of distinct certificates validated (Table 3's metric).
    Certificates,
    /// SSL session volume anchored (the Notary's traffic view).
    Sessions,
}

/// A trimming plan for one store.
#[derive(Debug, Clone)]
pub struct TrimPlan {
    /// Anchors to keep enabled, highest marginal weight first.
    pub keep: Vec<CertIdentity>,
    /// Anchors to disable.
    pub disable: Vec<CertIdentity>,
    /// Weight retained by `keep` (certificates or sessions).
    pub retained: u64,
    /// Total weight of the untrimmed store.
    pub total: u64,
    /// The weighting that produced the plan.
    pub weighting: Weighting,
}

impl TrimPlan {
    /// Fraction of the store's weight retained.
    pub fn retained_fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.retained as f64 / self.total as f64
        }
    }

    /// Attack-surface reduction: fraction of anchors disabled.
    pub fn surface_reduction(&self) -> f64 {
        let n = self.keep.len() + self.disable.len();
        if n == 0 {
            0.0
        } else {
            self.disable.len() as f64 / n as f64
        }
    }
}

/// Compute a trimming plan: keep the fewest anchors that retain at least
/// `target` (a fraction in `[0, 1]`) of the store's validated weight.
///
/// # Panics
/// Panics when `target` is outside `[0, 1]`.
pub fn plan(
    store: &RootStore,
    validation: &ValidationIndex,
    target: f64,
    weighting: Weighting,
) -> TrimPlan {
    assert!((0.0..=1.0).contains(&target), "target must be a fraction");
    let mut weighted: Vec<(CertIdentity, u64)> = store
        .identities()
        .iter()
        .map(|id| {
            let w = match weighting {
                Weighting::Certificates => validation.root_count(id) as u64,
                Weighting::Sessions => validation.root_sessions(id),
            };
            (id.clone(), w)
        })
        .collect();
    // Greedy: heaviest first; ties broken by identity for determinism.
    weighted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let total: u64 = weighted.iter().map(|(_, w)| w).sum();
    let want = (total as f64 * target).ceil() as u64;

    let mut keep = Vec::new();
    let mut disable = Vec::new();
    let mut retained = 0u64;
    for (id, w) in weighted {
        if retained < want && w > 0 {
            retained += w;
            keep.push(id);
        } else {
            disable.push(id);
        }
    }
    TrimPlan {
        keep,
        disable,
        retained,
        total,
        weighting,
    }
}

/// Apply a plan: disable every `plan.disable` anchor in a copy of the
/// store. The anchors stay listed (Android's disable semantics).
pub fn apply(store: &RootStore, plan: &TrimPlan) -> RootStore {
    let mut trimmed = store.cloned_as(&format!("{} (trimmed)", store.name()));
    for id in &plan.disable {
        trimmed.disable(id);
    }
    trimmed
}

/// The §8 recommendation, quantified: scope every anchor that anchors TLS
/// traffic to TLS-server-only trust, and strip *all* trust bits from
/// anchors that never validated anything. Returns the scoped store and a
/// summary of the surface change.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopingReport {
    /// Anchors trusted for everything before (stock Android: all).
    pub all_purpose_before: usize,
    /// Anchors trusted for everything after scoping.
    pub all_purpose_after: usize,
    /// Anchors reduced to TLS-only trust.
    pub tls_scoped: usize,
    /// Anchors fully untrusted (dead weight).
    pub untrusted: usize,
    /// TLS validation count before and after (must be equal: scoping by
    /// observed use loses no TLS coverage).
    pub tls_coverage_before: u32,
    /// TLS validation count after scoping.
    pub tls_coverage_after: u32,
}

/// Apply Mozilla-style scoping to a store based on observed use.
pub fn scope_by_observed_use(
    store: &RootStore,
    validation: &ValidationIndex,
) -> (RootStore, ScopingReport) {
    let mut scoped = store.cloned_as(&format!("{} (scoped)", store.name()));
    let before = validation.store_count(store);
    let all_purpose_before = store
        .iter()
        .filter(|a| a.trust.tls_server && a.trust.email && a.trust.code_signing)
        .count();

    let mut tls_scoped = 0usize;
    let mut untrusted = 0usize;
    let ids: Vec<CertIdentity> = scoped.identities().to_vec();
    let mut new_bits: HashMap<CertIdentity, TrustBits> = HashMap::new();
    for id in &ids {
        let bits = if validation.root_count(id) > 0 {
            tls_scoped += 1;
            TrustBits::tls_only()
        } else {
            untrusted += 1;
            TrustBits::none()
        };
        new_bits.insert(id.clone(), bits);
    }
    for (id, bits) in new_bits {
        scoped.set_trust(&id, bits);
    }

    let after = validation.store_count(&scoped);
    let report = ScopingReport {
        all_purpose_before,
        all_purpose_after: scoped
            .iter()
            .filter(|a| a.trust.tls_server && a.trust.email && a.trust.code_signing)
            .count(),
        tls_scoped,
        untrusted,
        tls_coverage_before: before,
        tls_coverage_after: after,
    };
    (scoped, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::Study;
    use std::sync::OnceLock;
    use tangled_pki::stores::ReferenceStore;

    fn study() -> &'static Study {
        static S: OnceLock<Study> = OnceLock::new();
        S.get_or_init(Study::quick)
    }

    fn aosp44() -> RootStore {
        ReferenceStore::Aosp44.cached().cloned_as("trim-test")
    }

    #[test]
    fn full_target_keeps_every_live_root() {
        let p = plan(&aosp44(), &study().validation, 1.0, Weighting::Certificates);
        assert_eq!(p.retained, p.total);
        assert!((p.retained_fraction() - 1.0).abs() < 1e-12);
        // Everything disabled is genuinely dead.
        for id in &p.disable {
            assert_eq!(study().validation.root_count(id), 0);
        }
        assert!(p.surface_reduction() > 0.10, "dead weight exists to trim");
    }

    #[test]
    fn half_target_needs_few_roots() {
        let p = plan(&aosp44(), &study().validation, 0.5, Weighting::Certificates);
        // Zipf issuance: a handful of roots carries half the coverage.
        assert!(p.keep.len() <= 12, "kept {}", p.keep.len());
        assert!(p.retained_fraction() >= 0.5);
    }

    #[test]
    fn plans_are_monotone_in_target() {
        let v = &study().validation;
        let store = aosp44();
        let mut prev = 0usize;
        for target in [0.25, 0.5, 0.9, 0.99, 1.0] {
            let p = plan(&store, v, target, Weighting::Certificates);
            assert!(p.keep.len() >= prev, "target {target}");
            prev = p.keep.len();
        }
    }

    #[test]
    fn session_weighting_can_reorder_keeps() {
        let v = &study().validation;
        let store = aosp44();
        let by_cert = plan(&store, v, 0.9, Weighting::Certificates);
        let by_sess = plan(&store, v, 0.9, Weighting::Sessions);
        // Both achieve their target under their own metric.
        assert!(by_cert.retained_fraction() >= 0.9);
        assert!(by_sess.retained_fraction() >= 0.9);
        assert_eq!(by_sess.weighting, Weighting::Sessions);
    }

    #[test]
    fn apply_preserves_len_and_coverage() {
        let v = &study().validation;
        let store = aosp44();
        let p = plan(&store, v, 1.0, Weighting::Certificates);
        let trimmed = apply(&store, &p);
        assert_eq!(trimmed.len(), store.len(), "disable keeps anchors listed");
        // Full-target trim loses no coverage.
        assert_eq!(v.store_count(&trimmed), v.store_count(&store));
        // A 50% trim loses coverage but keeps at least half.
        let p50 = plan(&store, v, 0.5, Weighting::Certificates);
        let trimmed50 = apply(&store, &p50);
        let c = v.store_count(&trimmed50);
        assert!(c < v.store_count(&store));
        assert!(c as f64 >= 0.5 * v.store_count(&store) as f64);
    }

    #[test]
    fn scoping_report_invariants() {
        let v = &study().validation;
        let store = aosp44();
        let (scoped, report) = scope_by_observed_use(&store, v);
        // Stock Android: everything all-purpose. After: nothing.
        assert_eq!(report.all_purpose_before, store.len());
        assert_eq!(report.all_purpose_after, 0);
        assert_eq!(report.tls_scoped + report.untrusted, store.len());
        // Scoping by observed use never reduces TLS coverage...
        assert_eq!(report.tls_coverage_before, report.tls_coverage_after);
        // ...while eliminating code-signing trust everywhere.
        assert!(scoped.iter().all(|a| !a.trust.code_signing));
        // Untrusted count equals the Table 4 dead count for this store.
        let dead = store
            .identities()
            .iter()
            .filter(|id| v.root_count(id) == 0)
            .count();
        assert_eq!(report.untrusted, dead);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_target_panics() {
        plan(&aosp44(), &study().validation, 1.5, Weighting::Certificates);
    }
}
