//! Rooting, rooted-only certificates (§6 / Table 5), §5.2 oddities, and the
//! five missing-cert handsets.

use crate::device::Device;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;
use tangled_pki::extras::{rooted_device_cas, unusual_certs, UnusualOrigin};
use tangled_pki::stores::global_factory;
use tangled_pki::trust::AnchorSource;

/// Fraction of *sessions* that run on rooted handsets (§6: 24 %). Applied
/// per device; session counts are independent of rooting, so the
/// session-weighted fraction matches in expectation.
pub const ROOTED_FRACTION: f64 = 0.24;

/// Flag devices as rooted, then install the Table 5 rooted-only
/// certificates on specific rooted devices.
///
/// The CRAZY HOUSE certificate (installed by the Freedom app) lands on 70
/// devices; the four singletons on one each. Target devices are chosen
/// among rooted devices with few sessions so that the sessions exposing
/// rooted-only certs come to ≈6 % of rooted sessions, as the paper reports.
pub fn assign_rooting(devices: &mut [Device], session_counts: &[u32], rng: &mut StdRng) {
    for d in devices.iter_mut() {
        d.rooted = rng.gen_bool(ROOTED_FRACTION);
    }

    // Candidate hosts for rooted-only certs: rooted, light session counts.
    let hosts: Vec<usize> = devices
        .iter()
        .enumerate()
        .filter(|(i, d)| d.rooted && (2..=4).contains(&session_counts[*i]))
        .map(|(i, _)| i)
        .collect();

    let mut factory = global_factory().lock().expect("factory poisoned");
    let mut next = 0usize;
    for ca in rooted_device_cas() {
        // Scale the device count down when the population itself is scaled
        // (fewer hosts than the full-scale dataset provides).
        let want = ca.devices.min(hosts.len().saturating_sub(next));
        for _ in 0..want {
            let idx = hosts[next];
            next += 1;
            let dev = &mut devices[idx];
            let mut store = dev.store.cloned_as(&format!("{} (rooted)", dev.store.name()));
            store.add_cert(factory.root(ca.authority), AnchorSource::RootApp);
            dev.store = Arc::new(store);
        }
        if next >= hosts.len() {
            break;
        }
    }
}

/// Sprinkle the §5.2 unusual certificates (operator services, government
/// CAs, user VPN roots) over non-rooted devices.
pub fn sprinkle_unusual(devices: &mut [Device], rng: &mut StdRng) {
    let mut factory = global_factory().lock().expect("factory poisoned");
    let n = devices.len();
    if n == 0 {
        return;
    }
    for uc in unusual_certs() {
        for _ in 0..uc.devices {
            // Uniform device pick; collisions are fine (add is idempotent).
            let idx = rng.gen_range(0..n);
            let dev = &mut devices[idx];
            let source = match uc.origin {
                UnusualOrigin::RootApp => AnchorSource::RootApp,
                UnusualOrigin::UserVpn => AnchorSource::User,
                UnusualOrigin::OperatorService => AnchorSource::Operator,
                UnusualOrigin::Government => AnchorSource::Unknown,
            };
            let mut store = dev.store.cloned_as(&format!("{} (+unusual)", dev.store.name()));
            store.add_cert(factory.root(uc.authority), source);
            dev.store = Arc::new(store);
        }
    }
}

/// Exactly five handsets in the paper were *missing* AOSP certificates.
/// Remove one or two anchors from five devices via user action.
pub fn remove_certs_on_five_devices(devices: &mut [Device], rng: &mut StdRng) {
    let n = devices.len();
    if n == 0 {
        return;
    }
    let target = 5.min(n);
    // BTreeSet: deterministic iteration order (std HashSet order is
    // seeded per process and would break reproducibility).
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < target {
        chosen.insert(rng.gen_range(0..n));
    }
    for idx in chosen {
        let dev = &mut devices[idx];
        let mut store = dev.store.cloned_as(&format!("{} (-user)", dev.store.name()));
        let k = rng.gen_range(1..=2usize);
        // Users remove obscure tail-of-store anchors, not the busy web
        // CAs at the front (which would break ordinary browsing).
        let victims: Vec<_> = store
            .identities()
            .iter()
            .rev()
            .filter(|id| {
                store
                    .get(id)
                    .is_some_and(|a| a.source == AnchorSource::Aosp)
            })
            .take(k)
            .cloned()
            .collect();
        for id in &victims {
            store.remove(id);
        }
        dev.removed_aosp = victims;
        dev.store = Arc::new(store);
    }
}

#[cfg(test)]
mod tests {
    use crate::population::{Population, PopulationSpec};

    fn pop() -> Population {
        Population::generate(&PopulationSpec::scaled(0.25))
    }

    #[test]
    fn rooted_session_fraction_near_24_percent() {
        let pop = pop();
        let rooted: usize = pop
            .sessions
            .iter()
            .filter(|s| pop.device_of(s).rooted)
            .count();
        let frac = rooted as f64 / pop.sessions.len() as f64;
        assert!(
            (0.18..=0.30).contains(&frac),
            "rooted session fraction {frac:.3}"
        );
    }

    #[test]
    fn rooted_only_certs_only_on_rooted_devices() {
        let pop = pop();
        for d in &pop.devices {
            if d.has_root_app_certs()
                && d.store
                    .iter()
                    .any(|a| a.cert.subject.to_string().contains("CRAZY HOUSE"))
            {
                assert!(d.rooted, "CRAZY HOUSE only appears on rooted handsets");
            }
        }
    }

    #[test]
    fn crazy_house_device_count_scales() {
        let pop = Population::generate(&PopulationSpec::default());
        let carriers = pop
            .devices
            .iter()
            .filter(|d| {
                d.store
                    .iter()
                    .any(|a| a.cert.subject.to_string().contains("CRAZY HOUSE"))
            })
            .count();
        assert_eq!(carriers, 70, "Table 5: CRAZY HOUSE on 70 devices");
    }

    #[test]
    fn rooted_only_session_share_near_6_percent_of_rooted() {
        let pop = Population::generate(&PopulationSpec::default());
        let mut rooted_sessions = 0usize;
        let mut flagged = 0usize;
        for s in &pop.sessions {
            let d = pop.device_of(s);
            if d.rooted {
                rooted_sessions += 1;
                if d.has_root_app_certs() {
                    flagged += 1;
                }
            }
        }
        let frac = flagged as f64 / rooted_sessions as f64;
        assert!(
            (0.03..=0.10).contains(&frac),
            "rooted-only cert session share {frac:.3} (paper: 6%)"
        );
    }

    #[test]
    fn exactly_five_devices_missing_certs() {
        let pop = Population::generate(&PopulationSpec::default());
        let missing = pop
            .devices
            .iter()
            .filter(|d| d.is_missing_aosp_certs())
            .count();
        assert_eq!(missing, 5);
        for d in pop.devices.iter().filter(|d| d.is_missing_aosp_certs()) {
            assert!(d.aosp_cert_count() < d.os_version.aosp_store_size());
        }
    }

    #[test]
    fn unusual_certs_present_somewhere() {
        let pop = Population::generate(&PopulationSpec::default());
        let has = |needle: &str| {
            pop.devices.iter().any(|d| {
                d.store
                    .iter()
                    .any(|a| a.cert.subject.to_string().contains(needle))
            })
        };
        assert!(has("Meditel"));
        assert!(has("Venezuelan National CA"));
        assert!(has("Telefonica"));
    }
}
