//! Trust anchors and trust scoping.
//!
//! Android's root store treats every member as trusted "for any operation
//! from TLS server verification to code signing" (§2 of the paper) — unlike
//! Mozilla, which records per-anchor trust bits. [`TrustBits`] models the
//! Mozilla-style scoping so the §8 recommendation (scoped trust for
//! Android) can be implemented and measured; [`TrustBits::android`] is the
//! all-purposes value Android effectively uses.

use std::sync::Arc;
use tangled_x509::{CertIdentity, Certificate};

/// Mozilla-style trust scoping for an anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrustBits {
    /// Trusted to anchor TLS server certificates.
    pub tls_server: bool,
    /// Trusted to anchor S/MIME e-mail certificates.
    pub email: bool,
    /// Trusted to anchor code-signing certificates.
    pub code_signing: bool,
}

impl TrustBits {
    /// Android semantics: trusted for everything.
    pub const fn android() -> TrustBits {
        TrustBits {
            tls_server: true,
            email: true,
            code_signing: true,
        }
    }

    /// TLS-server-only trust (the typical Mozilla websites bit).
    pub const fn tls_only() -> TrustBits {
        TrustBits {
            tls_server: true,
            email: false,
            code_signing: false,
        }
    }

    /// No trust at all (a disabled anchor).
    pub const fn none() -> TrustBits {
        TrustBits {
            tls_server: false,
            email: false,
            code_signing: false,
        }
    }

    /// Does this value grant any trust?
    pub fn any(self) -> bool {
        self.tls_server || self.email || self.code_signing
    }
}

impl Default for TrustBits {
    fn default() -> Self {
        TrustBits::android()
    }
}

/// Who put an anchor into a device's root store — the provenance axis the
/// whole §5/§6 analysis pivots on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AnchorSource {
    /// Shipped in Google's AOSP distribution.
    Aosp,
    /// Added by the handset manufacturer's firmware image.
    Manufacturer,
    /// Added by the mobile operator's firmware customization.
    Operator,
    /// Added manually by the user through system settings.
    User,
    /// Added by an app with root permissions (rooted handsets, §6).
    RootApp,
    /// Provenance unknown (observed in the wild, origin not established —
    /// the §5.2 "additional observations" bucket).
    Unknown,
}

impl AnchorSource {
    /// Short human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            AnchorSource::Aosp => "AOSP",
            AnchorSource::Manufacturer => "manufacturer",
            AnchorSource::Operator => "operator",
            AnchorSource::User => "user",
            AnchorSource::RootApp => "root-app",
            AnchorSource::Unknown => "unknown",
        }
    }
}

/// One member of a root store.
#[derive(Debug, Clone)]
pub struct TrustAnchor {
    /// The anchor certificate.
    pub cert: Arc<Certificate>,
    /// Trust scoping (always [`TrustBits::android`] on stock Android).
    pub trust: TrustBits,
    /// Provenance.
    pub source: AnchorSource,
    /// Whether the user disabled the anchor in system settings (it stays in
    /// the store but anchors nothing).
    pub enabled: bool,
}

impl TrustAnchor {
    /// A fully-enabled, Android-scoped anchor.
    pub fn new(cert: Arc<Certificate>, source: AnchorSource) -> TrustAnchor {
        TrustAnchor {
            cert,
            trust: TrustBits::android(),
            source,
            enabled: true,
        }
    }

    /// The paper's identity key for this anchor.
    pub fn identity(&self) -> CertIdentity {
        self.cert.identity()
    }

    /// Is the anchor usable for TLS server verification right now?
    pub fn trusts_tls(&self) -> bool {
        self.enabled && self.trust.tls_server
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn android_bits_grant_everything() {
        let b = TrustBits::android();
        assert!(b.tls_server && b.email && b.code_signing);
        assert!(b.any());
    }

    #[test]
    fn none_grants_nothing() {
        assert!(!TrustBits::none().any());
    }

    #[test]
    fn tls_only_scoping() {
        let b = TrustBits::tls_only();
        assert!(b.tls_server && !b.email && !b.code_signing);
    }

    #[test]
    fn source_labels_unique() {
        use AnchorSource::*;
        let all = [Aosp, Manufacturer, Operator, User, RootApp, Unknown];
        let labels: std::collections::HashSet<_> = all.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), all.len());
    }
}
