//! Generators for Tables 1–6 of the paper.
//!
//! Each generator returns both the structured numbers (for tests and
//! benches to assert against) and a [`TextTable`] matching the paper's
//! layout.

use crate::report::{pct, thousands, TextTable};
use crate::study::Study;
use std::collections::HashMap;
use tangled_intercept::origin::OriginServers;
use tangled_intercept::{detect, MitmProxy};
use tangled_netalyzr::Population;
use tangled_notary::ValidationIndex;
use tangled_pki::extras::{catalogue, rooted_device_cas};
use tangled_pki::stores::{aggregated_android, global_factory, mint_extra, ReferenceStore};
use tangled_pki::RootStore;
use tangled_x509::CertIdentity;

// ---------------------------------------------------------------------------
// Table 1 — Number of certificates in different root stores.
// ---------------------------------------------------------------------------

/// Table 1 data: `(store name, certificate count)` in the paper's order.
pub fn table1_data() -> Vec<(&'static str, usize)> {
    [
        ReferenceStore::Aosp41,
        ReferenceStore::Aosp42,
        ReferenceStore::Aosp43,
        ReferenceStore::Aosp44,
        ReferenceStore::Ios7,
        ReferenceStore::Mozilla,
    ]
    .into_iter()
    .map(|rs| (rs.name(), rs.cached().len()))
    .collect()
}

/// Render Table 1.
pub fn table1() -> TextTable {
    let mut t = TextTable::new(
        "Table 1: Number of certificates in different root stores.",
        &["Root store", "No. certificates"],
    );
    for (name, n) in table1_data() {
        t.row(&[name.to_owned(), n.to_string()]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 2 — Top 5 mobile devices and manufacturers.
// ---------------------------------------------------------------------------

/// Table 2 data: top-5 `(model, sessions)` and `(manufacturer, sessions)`.
pub struct Table2 {
    /// Top device models by session count.
    pub top_models: Vec<(String, u32)>,
    /// Top manufacturers by session count.
    pub top_manufacturers: Vec<(String, u32)>,
}

/// Compute Table 2 from a population.
pub fn table2_data(pop: &Population) -> Table2 {
    let counts = pop.sessions_per_device();
    let mut by_model: HashMap<&str, u32> = HashMap::new();
    let mut by_mfr: HashMap<&str, u32> = HashMap::new();
    for (i, d) in pop.devices.iter().enumerate() {
        *by_model.entry(d.model.as_str()).or_default() += counts[i];
        *by_mfr.entry(d.manufacturer.label()).or_default() += counts[i];
    }
    let top = |m: HashMap<&str, u32>| -> Vec<(String, u32)> {
        let mut v: Vec<_> = m.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(5);
        v.into_iter().map(|(k, n)| (k.to_owned(), n)).collect()
    };
    Table2 {
        top_models: top(by_model),
        top_manufacturers: top(by_mfr),
    }
}

/// Render Table 2.
pub fn table2(pop: &Population) -> TextTable {
    let data = table2_data(pop);
    let mut t = TextTable::new(
        "Table 2: Top 5 mobile devices and manufacturers in our Android dataset.",
        &["Device model", "No. sessions", "Manufacturer", "No. sessions"],
    );
    for i in 0..5 {
        let (model, ms) = data
            .top_models
            .get(i)
            .map(|(m, n)| (m.clone(), n.to_string()))
            .unwrap_or_default();
        let (mfr, fs) = data
            .top_manufacturers
            .get(i)
            .map(|(m, n)| (m.clone(), n.to_string()))
            .unwrap_or_default();
        t.row(&[model, ms, mfr, fs]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 3 — Number of certificates validated by each root store.
// ---------------------------------------------------------------------------

/// Table 3 data: `(store name, validated count)` in the paper's order.
pub fn table3_data(validation: &ValidationIndex) -> Vec<(&'static str, u32)> {
    [
        ReferenceStore::Mozilla,
        ReferenceStore::Ios7,
        ReferenceStore::Aosp41,
        ReferenceStore::Aosp42,
        ReferenceStore::Aosp43,
        ReferenceStore::Aosp44,
    ]
    .into_iter()
    .map(|rs| (rs.name(), validation.store_count(&rs.cached())))
    .collect()
}

/// Render Table 3.
pub fn table3(validation: &ValidationIndex) -> TextTable {
    let mut t = TextTable::new(
        "Table 3: Number of certificates validated by Mozilla and AOSP root stores.",
        &["Root store", "No. validated certificates"],
    );
    for (name, n) in table3_data(validation) {
        t.row(&[name.to_owned(), thousands(n as u64)]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 4 — Root certificates per category and dead fractions.
// ---------------------------------------------------------------------------

/// One Table 4 row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Category label as the paper prints it.
    pub category: &'static str,
    /// Total root certificates in the category.
    pub total: usize,
    /// Fraction validating zero Notary certificates.
    pub dead_fraction: f64,
}

/// The identity sets behind Table 4's categories.
pub fn table4_categories() -> Vec<(&'static str, Vec<CertIdentity>)> {
    let aosp44 = ReferenceStore::Aosp44.cached();
    let aosp41 = ReferenceStore::Aosp41.cached();
    let mozilla = ReferenceStore::Mozilla.cached();
    let ios7 = ReferenceStore::Ios7.cached();

    let extras: Vec<(bool, CertIdentity)> = {
        let mut factory = global_factory().lock().expect("factory poisoned");
        catalogue()
            .iter()
            .map(|e| (e.in_mozilla, mint_extra(&mut factory, e).identity()))
            .collect()
    };
    let neither: Vec<CertIdentity> = extras
        .iter()
        .filter(|(in_moz, _)| !in_moz)
        .map(|(_, id)| id.clone())
        .collect();
    let on_mozillas: Vec<CertIdentity> = extras
        .iter()
        .filter(|(in_moz, _)| *in_moz)
        .map(|(_, id)| id.clone())
        .collect();
    let shared: Vec<CertIdentity> = aosp44
        .identities()
        .iter()
        .filter(|id| mozilla.contains(id))
        .cloned()
        .collect();
    let aggregated: Vec<CertIdentity> = {
        let mut factory = global_factory().lock().expect("factory poisoned");
        aggregated_android(&mut factory).identities().to_vec()
    };

    vec![
        ("Non AOSP and Non Mozilla root certs", neither),
        ("Non AOSP root certs found on Mozilla's", on_mozillas),
        ("AOSP 4.4 and Mozilla root certs", shared),
        ("AOSP 4.1 certs", aosp41.identities().to_vec()),
        ("AOSP 4.4 certs", aosp44.identities().to_vec()),
        ("Aggregated Android root certs", aggregated),
        ("Mozilla root store certs", mozilla.identities().to_vec()),
        ("iOS 7 root store certs", ios7.identities().to_vec()),
    ]
}

/// Compute Table 4.
pub fn table4_data(validation: &ValidationIndex) -> Vec<Table4Row> {
    table4_categories()
        .into_iter()
        .map(|(category, ids)| Table4Row {
            category,
            total: ids.len(),
            dead_fraction: validation.dead_fraction(ids.iter()),
        })
        .collect()
}

/// Render Table 4.
pub fn table4(validation: &ValidationIndex) -> TextTable {
    let mut t = TextTable::new(
        "Table 4: Root certificates per category, and how many validate none of the Notary's certificates.",
        &["Root store category", "Total root certs", "Do not validate"],
    );
    for row in table4_data(validation) {
        t.row(&[
            row.category.to_owned(),
            row.total.to_string(),
            pct(row.dead_fraction),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 5 — CAs found more frequently on rooted devices.
// ---------------------------------------------------------------------------

/// Table 5 data: `(authority, device count)` observed in the population.
pub fn table5_data(pop: &Population) -> Vec<(String, usize)> {
    let authorities: Vec<&'static str> = rooted_device_cas()
        .into_iter()
        .map(|c| c.authority)
        .collect();
    authorities
        .into_iter()
        .map(|name| {
            let devices = pop
                .devices
                .iter()
                .filter(|d| {
                    d.store
                        .iter()
                        .any(|a| a.cert.subject.to_string().contains(name))
                })
                .count();
            (name.to_owned(), devices)
        })
        .collect()
}

/// Render Table 5.
pub fn table5(pop: &Population) -> TextTable {
    let mut t = TextTable::new(
        "Table 5: CAs and user self-signed certificates found more frequently on rooted devices.",
        &["Certificate authority", "Total devices"],
    );
    for (name, n) in table5_data(pop) {
        t.row(&[name, n.to_string()]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 6 — Domains intercepted and whitelisted by the proxy.
// ---------------------------------------------------------------------------

/// Table 6 data derived by *probing* the proxy (not by reading its
/// policy): endpoints whose presented chain fails validation are
/// intercepted; the rest are whitelisted.
pub struct Table6 {
    /// Endpoints observed intercepted.
    pub intercepted: Vec<String>,
    /// Endpoints passed through untouched.
    pub whitelisted: Vec<String>,
}

/// Probe the Reality Mine proxy over the Table 6 endpoint list.
pub fn table6_data() -> Table6 {
    let origin = OriginServers::for_table6();
    let device_store: RootStore = ReferenceStore::Aosp44.cached().cloned_as("probe device");
    // A classified mint failure degrades to a diagnostic row rather than
    // panicking the table renderer.
    let reports = match MitmProxy::reality_mine()
        .and_then(|mut proxy| detect::probe_all(&mut proxy, &origin, &device_store, &[]))
    {
        Ok(reports) => reports,
        Err(e) => {
            return Table6 {
                intercepted: vec![format!("mint-error: {e}")],
                whitelisted: Vec::new(),
            }
        }
    };
    let mut intercepted = Vec::new();
    let mut whitelisted = Vec::new();
    for r in reports {
        if r.verdict.is_interception() {
            intercepted.push(r.target.to_string());
        } else {
            whitelisted.push(r.target.to_string());
        }
    }
    intercepted.sort();
    whitelisted.sort();
    Table6 {
        intercepted,
        whitelisted,
    }
}

/// Render Table 6.
pub fn table6() -> TextTable {
    let data = table6_data();
    let mut t = TextTable::new(
        "Table 6: Domains being intercepted and whitelisted by the HTTPS proxy.",
        &["Intercepted domains", "Whitelisted domains"],
    );
    let rows = data.intercepted.len().max(data.whitelisted.len());
    for i in 0..rows {
        t.row(&[
            data.intercepted.get(i).cloned().unwrap_or_default(),
            data.whitelisted.get(i).cloned().unwrap_or_default(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Dataset description (§4.1) — not a numbered table in the paper, but the
// prose statistics the methodology section reports.
// ---------------------------------------------------------------------------

/// Render the §4.1 dataset summary: sessions, devices, models, collected
/// and unique root certificates, per-version and per-rooting breakdowns.
pub fn dataset_summary(pop: &Population) -> TextTable {
    let stats = crate::classify::collection_stats(pop);
    let counts = pop.sessions_per_device();
    let mut by_version: HashMap<&'static str, u32> = HashMap::new();
    let mut rooted_sessions = 0u32;
    for (i, d) in pop.devices.iter().enumerate() {
        *by_version.entry(d.os_version.label()).or_default() += counts[i];
        if d.rooted {
            rooted_sessions += counts[i];
        }
    }
    let mut t = TextTable::new(
        "Dataset summary (cf. §4.1 of the paper).",
        &["Quantity", "Value"],
    );
    t.row(&["Netalyzr sessions".into(), thousands(pop.sessions.len() as u64)]);
    t.row(&["Distinct handsets".into(), thousands(pop.devices.len() as u64)]);
    t.row(&["Device models".into(), pop.distinct_models().to_string()]);
    t.row(&[
        "Root certificates collected".into(),
        thousands(stats.total_collected),
    ]);
    t.row(&["Unique root certificates".into(), stats.unique.to_string()]);
    for v in tangled_pki::vocab::AndroidVersion::ALL {
        t.row(&[
            format!("Sessions on Android {}", v.label()),
            thousands(by_version.get(v.label()).copied().unwrap_or(0) as u64),
        ]);
    }
    t.row(&[
        "Sessions on rooted handsets".into(),
        thousands(rooted_sessions as u64),
    ]);
    t
}

/// Render every table of the paper from one study.
pub fn render_all(study: &Study) -> String {
    let mut out = String::new();
    for table in [
        table1(),
        table2(&study.population),
        table3(&study.validation),
        table4(&study.validation),
        table5(&study.population),
        table6(),
    ] {
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_exactly() {
        let data = table1_data();
        assert_eq!(
            data,
            vec![
                ("AOSP 4.1", 139),
                ("AOSP 4.2", 140),
                ("AOSP 4.3", 146),
                ("AOSP 4.4", 150),
                ("iOS 7", 227),
                ("Mozilla", 153),
            ]
        );
    }

    #[test]
    fn table6_matches_paper_exactly() {
        let data = table6_data();
        let expect_i: Vec<String> = tangled_intercept::INTERCEPTED_DOMAINS
            .iter()
            .map(|s| s.to_string())
            .collect();
        let expect_w: Vec<String> = tangled_intercept::WHITELISTED_DOMAINS
            .iter()
            .map(|s| s.to_string())
            .collect();
        let sorted = |mut v: Vec<String>| {
            v.sort();
            v
        };
        assert_eq!(data.intercepted, sorted(expect_i));
        assert_eq!(data.whitelisted, sorted(expect_w));
    }

    #[test]
    fn table4_category_sizes() {
        let cats = table4_categories();
        let sizes: HashMap<&str, usize> =
            cats.iter().map(|(n, ids)| (*n, ids.len())).collect();
        // Paper: 85 / 16 / 130 / 139 / 150 / 235 / 153 / 227. Ours matches
        // except the two driven by the Figure 2 axis (88 and 238) — see
        // EXPERIMENTS.md.
        assert_eq!(sizes["Non AOSP and Non Mozilla root certs"], 88);
        assert_eq!(sizes["Non AOSP root certs found on Mozilla's"], 16);
        assert_eq!(sizes["AOSP 4.4 and Mozilla root certs"], 130);
        assert_eq!(sizes["AOSP 4.1 certs"], 139);
        assert_eq!(sizes["AOSP 4.4 certs"], 150);
        assert_eq!(sizes["Aggregated Android root certs"], 238);
        assert_eq!(sizes["Mozilla root store certs"], 153);
        assert_eq!(sizes["iOS 7 root store certs"], 227);
    }

    #[test]
    fn dataset_summary_renders() {
        let pop = tangled_netalyzr::Population::generate(
            &tangled_netalyzr::PopulationSpec::scaled(0.1),
        );
        let t = dataset_summary(&pop);
        let text = t.render();
        assert!(text.contains("Netalyzr sessions"));
        assert!(text.contains("Unique root certificates"));
        assert!(text.contains("Sessions on Android 4.4"));
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn tables_render_with_data() {
        let t = table1();
        assert_eq!(t.len(), 6);
        assert!(t.render().contains("150"));
        let t6 = table6();
        assert_eq!(t6.len(), 12);
        assert!(t6.render().contains("supl.google.com:7275"));
    }
}
