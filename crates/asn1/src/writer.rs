//! DER serialization.
//!
//! [`DerWriter`] appends TLVs to an internal buffer. Constructed types take a
//! closure that writes the children; the writer buffers the children and then
//! emits the definite length, so output is always valid DER.

use crate::oid::Oid;
use crate::tag::Tag;
use crate::time::Time;

/// Serializer for DER structures.
#[derive(Debug, Default)]
pub struct DerWriter {
    out: Vec<u8>,
}

impl DerWriter {
    /// A writer with an empty buffer.
    pub fn new() -> Self {
        DerWriter { out: Vec::new() }
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Write a complete TLV with the given tag and raw content octets.
    pub fn tlv(&mut self, tag: Tag, content: &[u8]) {
        self.out.push(tag.to_byte());
        write_length(&mut self.out, content.len());
        self.out.extend_from_slice(content);
    }

    /// Write raw pre-encoded DER (already a complete TLV).
    pub fn raw(&mut self, der: &[u8]) {
        self.out.extend_from_slice(der);
    }

    /// Write a constructed TLV whose content is produced by `f`.
    pub fn constructed(&mut self, tag: Tag, f: impl FnOnce(&mut DerWriter)) {
        debug_assert!(tag.constructed, "constructed() requires a constructed tag");
        let mut inner = DerWriter::new();
        f(&mut inner);
        self.tlv(tag, &inner.out);
    }

    /// Write a SEQUENCE.
    pub fn sequence(&mut self, f: impl FnOnce(&mut DerWriter)) {
        self.constructed(Tag::SEQUENCE, f);
    }

    /// Write a SET.
    ///
    /// Note: DER requires SET OF elements in ascending byte order; the
    /// X.509 code in this workspace writes single-element sets (one
    /// AttributeTypeAndValue per RDN), so ordering never arises.
    pub fn set(&mut self, f: impl FnOnce(&mut DerWriter)) {
        self.constructed(Tag::SET, f);
    }

    /// Write an EXPLICIT `[n]` wrapper.
    pub fn context(&mut self, number: u8, f: impl FnOnce(&mut DerWriter)) {
        self.constructed(Tag::context_constructed(number), f);
    }

    /// Write a BOOLEAN (DER: `0xFF` for true, `0x00` for false).
    pub fn boolean(&mut self, v: bool) {
        self.tlv(Tag::BOOLEAN, &[if v { 0xff } else { 0x00 }]);
    }

    /// Write NULL.
    pub fn null(&mut self) {
        self.tlv(Tag::NULL, &[]);
    }

    /// Write an INTEGER from unsigned big-endian magnitude bytes.
    ///
    /// The value is treated as non-negative; a leading zero octet is added
    /// when the top bit is set, and redundant leading zeros are stripped,
    /// yielding the minimal DER encoding.
    pub fn integer_bytes(&mut self, magnitude_be: &[u8]) {
        let mut start = 0;
        while start < magnitude_be.len() && magnitude_be[start] == 0 {
            start += 1;
        }
        let trimmed = &magnitude_be[start..];
        if trimmed.is_empty() {
            self.tlv(Tag::INTEGER, &[0]);
            return;
        }
        if trimmed[0] & 0x80 != 0 {
            let mut content = Vec::with_capacity(trimmed.len() + 1);
            content.push(0);
            content.extend_from_slice(trimmed);
            self.tlv(Tag::INTEGER, &content);
        } else {
            self.tlv(Tag::INTEGER, trimmed);
        }
    }

    /// Write a small non-negative INTEGER.
    pub fn integer_u64(&mut self, v: u64) {
        self.integer_bytes(&v.to_be_bytes());
    }

    /// Write an OBJECT IDENTIFIER.
    pub fn oid(&mut self, oid: &Oid) {
        self.tlv(Tag::OID, &oid.to_der_content());
    }

    /// Write an OCTET STRING.
    pub fn octet_string(&mut self, bytes: &[u8]) {
        self.tlv(Tag::OCTET_STRING, bytes);
    }

    /// Write a BIT STRING with zero unused bits (the only form X.509
    /// signatures and SPKIs need).
    pub fn bit_string(&mut self, bytes: &[u8]) {
        let mut content = Vec::with_capacity(bytes.len() + 1);
        content.push(0); // unused-bits count
        content.extend_from_slice(bytes);
        self.tlv(Tag::BIT_STRING, &content);
    }

    /// Write a named-bit-list BIT STRING (for KeyUsage): `bits[i]` is bit i.
    /// Trailing zero bits are trimmed per DER.
    pub fn bit_string_named(&mut self, bits: &[bool]) {
        let significant = bits.iter().rposition(|&b| b).map_or(0, |i| i + 1);
        let nbytes = significant.div_ceil(8);
        let unused = nbytes * 8 - significant;
        let mut content = vec![0u8; nbytes + 1];
        content[0] = unused as u8;
        for (i, &bit) in bits.iter().take(significant).enumerate() {
            if bit {
                content[1 + i / 8] |= 0x80 >> (i % 8);
            }
        }
        self.tlv(Tag::BIT_STRING, &content);
    }

    /// Write a UTF8String.
    pub fn utf8_string(&mut self, s: &str) {
        self.tlv(Tag::UTF8_STRING, s.as_bytes());
    }

    /// Write a PrintableString.
    ///
    /// # Panics
    /// Panics (debug) if `s` contains characters outside the
    /// PrintableString repertoire.
    pub fn printable_string(&mut self, s: &str) {
        debug_assert!(
            s.bytes().all(is_printable_char),
            "not a PrintableString: {s:?}"
        );
        self.tlv(Tag::PRINTABLE_STRING, s.as_bytes());
    }

    /// Write an IA5String (ASCII).
    pub fn ia5_string(&mut self, s: &str) {
        debug_assert!(s.is_ascii(), "IA5String must be ASCII");
        self.tlv(Tag::IA5_STRING, s.as_bytes());
    }

    /// Write a time value, choosing UTCTime for years 1950–2049 and
    /// GeneralizedTime otherwise, per RFC 5280 §4.1.2.5.
    pub fn time(&mut self, t: &Time) {
        if (1950..2050).contains(&t.year) {
            self.tlv(Tag::UTC_TIME, t.to_utc_time_string().as_bytes());
        } else {
            self.tlv(Tag::GENERALIZED_TIME, t.to_generalized_time_string().as_bytes());
        }
    }
}

/// Is `b` in the PrintableString character set?
pub fn is_printable_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b' ' | b'\'' | b'(' | b')' | b'+' | b',' | b'-' | b'.' | b'/' | b':' | b'=' | b'?')
}

fn write_length(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
    } else {
        let bytes = (len as u64).to_be_bytes();
        let first = bytes.iter().position(|&b| b != 0).unwrap_or(7);
        let sig = &bytes[first..];
        out.push(0x80 | sig.len() as u8);
        out.extend_from_slice(sig);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_and_long_lengths() {
        let mut w = DerWriter::new();
        w.octet_string(&[0u8; 5]);
        assert_eq!(&w.out[..2], &[0x04, 0x05]);

        let mut w = DerWriter::new();
        w.octet_string(&[0u8; 200]);
        assert_eq!(&w.out[..3], &[0x04, 0x81, 200]);

        let mut w = DerWriter::new();
        w.octet_string(&vec![0u8; 1000]);
        assert_eq!(&w.out[..4], &[0x04, 0x82, 0x03, 0xe8]);
    }

    #[test]
    fn integer_minimal_encoding() {
        let mut w = DerWriter::new();
        w.integer_u64(0);
        assert_eq!(w.out, vec![0x02, 0x01, 0x00]);

        let mut w = DerWriter::new();
        w.integer_u64(127);
        assert_eq!(w.out, vec![0x02, 0x01, 0x7f]);

        // 128 needs a leading zero to stay non-negative.
        let mut w = DerWriter::new();
        w.integer_u64(128);
        assert_eq!(w.out, vec![0x02, 0x02, 0x00, 0x80]);

        // Redundant leading zeros stripped.
        let mut w = DerWriter::new();
        w.integer_bytes(&[0x00, 0x00, 0x01]);
        assert_eq!(w.out, vec![0x02, 0x01, 0x01]);
    }

    #[test]
    fn boolean_der_values() {
        let mut w = DerWriter::new();
        w.boolean(true);
        w.boolean(false);
        assert_eq!(w.out, vec![0x01, 0x01, 0xff, 0x01, 0x01, 0x00]);
    }

    #[test]
    fn bit_string_zero_unused() {
        let mut w = DerWriter::new();
        w.bit_string(&[0xde, 0xad]);
        assert_eq!(w.out, vec![0x03, 0x03, 0x00, 0xde, 0xad]);
    }

    #[test]
    fn named_bit_string_trims_trailing_zeros() {
        // keyCertSign is bit 5: named list [false x5, true] → one byte,
        // 2 unused bits.
        let mut w = DerWriter::new();
        w.bit_string_named(&[false, false, false, false, false, true]);
        assert_eq!(w.out, vec![0x03, 0x02, 0x02, 0x04]);

        // Empty list → zero-length bit string.
        let mut w = DerWriter::new();
        w.bit_string_named(&[false, false]);
        assert_eq!(w.out, vec![0x03, 0x01, 0x00]);
    }

    #[test]
    fn nested_sequence_lengths() {
        let mut w = DerWriter::new();
        w.sequence(|w| {
            w.sequence(|w| {
                w.integer_u64(1);
            });
        });
        assert_eq!(w.out, vec![0x30, 0x05, 0x30, 0x03, 0x02, 0x01, 0x01]);
    }

    #[test]
    fn explicit_context_tag() {
        let mut w = DerWriter::new();
        w.context(3, |w| w.integer_u64(7));
        assert_eq!(w.out, vec![0xa3, 0x03, 0x02, 0x01, 0x07]);
    }

    #[test]
    fn printable_charset() {
        assert!(is_printable_char(b'A'));
        assert!(is_printable_char(b' '));
        assert!(!is_printable_char(b'@'));
        assert!(!is_printable_char(b'_'));
    }
}
